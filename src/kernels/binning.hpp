// Row grouping for load balance (the host-side step between row analysis
// and symbolic execution in Fig. 3 of the paper).
//
// Rows are grouped by work class so each group can be processed by a kernel
// configuration suited to its size — mirroring spECK's lightweight analysis.
// Group boundaries are powers of two on the flop count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace oocgemm::kernels {

inline constexpr int kNumRowGroups = 5;

/// Work-class thresholds (flops): group g holds rows with
/// flops in (kGroupLimits[g-1], kGroupLimits[g]].
inline constexpr std::array<std::int64_t, kNumRowGroups> kGroupLimits = {
    0,        // group 0: empty rows (no work at all)
    128,      // group 1: tiny rows
    2048,     // group 2: small rows
    32768,    // group 3: medium rows
    INT64_MAX // group 4: heavy rows
};

struct RowGroups {
  /// groups[g] lists panel-local row ids, preserving row order.
  std::array<std::vector<sparse::index_t>, kNumRowGroups> groups;

  std::size_t total_rows() const {
    std::size_t n = 0;
    for (const auto& g : groups) n += g.size();
    return n;
  }
  std::string DebugString() const;
};

/// Buckets rows [0, n) by their flop counts.
RowGroups GroupRowsByWork(const std::int64_t* row_flops, std::size_t n);

}  // namespace oocgemm::kernels
