// Row grouping for load balance (the host-side step between row analysis
// and symbolic execution in Fig. 3 of the paper), extended with per-group
// strategy routing through the kernel registry.
//
// Rows are grouped by work class so each group can be processed by a kernel
// configuration suited to its size — mirroring spECK's lightweight analysis.
// Group boundaries are powers of two on the flop count.  RouteRows layers
// the Liu–Vinter step on top: each work class gets the accumulator strategy
// the registry's cost model picks for its representative row, so the
// symbolic/numeric phases can dispatch per group without per-row branching.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/accumulators.hpp"
#include "kernels/kernel_registry.hpp"
#include "sparse/types.hpp"

namespace oocgemm::kernels {

inline constexpr int kNumRowGroups = 5;

/// Work-class thresholds (flops): group g holds rows with
/// flops in (kGroupLimits[g-1], kGroupLimits[g]].
inline constexpr std::array<std::int64_t, kNumRowGroups> kGroupLimits = {
    0,        // group 0: empty rows (no work at all)
    128,      // group 1: tiny rows
    2048,     // group 2: small rows
    32768,    // group 3: medium rows
    INT64_MAX // group 4: heavy rows
};

struct RowGroups {
  /// groups[g] lists panel-local row ids, preserving row order.
  std::array<std::vector<sparse::index_t>, kNumRowGroups> groups;

  std::size_t total_rows() const {
    std::size_t n = 0;
    for (const auto& g : groups) n += g.size();
    return n;
  }
  std::string DebugString() const;
};

/// Buckets rows [0, n) by their flop counts.
RowGroups GroupRowsByWork(const std::int64_t* row_flops, std::size_t n);

/// Work classes plus the accumulator strategy routed to each class.
struct RoutedGroups {
  RowGroups groups;
  /// strategy[g] applies to every row in groups.groups[g]; never kAuto.
  std::array<AccumulatorKind, kNumRowGroups> strategy = {
      AccumulatorKind::kHash, AccumulatorKind::kHash, AccumulatorKind::kHash,
      AccumulatorKind::kHash, AccumulatorKind::kHash};
  std::string DebugString() const;
};

/// Buckets rows by `group_key` (flops for the symbolic pass; the device
/// numeric pass regroups by output nnz, as the paper does) and routes each
/// class through the kernel registry.  With `forced != kAuto` every group
/// gets that strategy (modulo the dense feasibility gate, which falls back
/// to hash).  With kAuto the registry's cost model routes each non-empty
/// group from the mean flops of its rows and — when `row_nnz` is non-null
/// (post-symbolic) — the mean exact output nnz; otherwise density comes
/// from the occupancy model.
/// `calibration` (default identity = static model) comes from the
/// cost-model calibrator and rescales the per-class cost comparison.
RoutedGroups RouteRows(const std::int64_t* group_key,
                       const std::int64_t* row_flops,
                       const std::int64_t* row_nnz, std::size_t n,
                       sparse::index_t b_cols, AccumulatorKind forced,
                       const RouteCalibration& calibration = {});

/// Bumps oocgemm_kernel_rows_total{strategy} by each group's row count.
/// Called once per multiply (from the numeric routing pass) so the
/// counters reconcile exactly with routed row totals.
void RecordRoutedRows(const RoutedGroups& routed);

/// Post-hoc routing-quality pass: re-routes each row on its exact output
/// nnz and, where the modeled-best strategy differs from the routed one,
/// bumps oocgemm_kernel_misroutes_total{strategy} and records the
/// routed/best cost ratio histogram.
void RecordRoutingQuality(const RoutedGroups& routed,
                          const std::int64_t* row_flops,
                          const std::int64_t* row_nnz, sparse::index_t b_cols);

}  // namespace oocgemm::kernels
