// Row accumulators for SpGEMM (Section II-B of the paper, extended into a
// four-strategy family routed by the kernel registry).
//
//  * HashAccumulator — open-addressing map keyed by column id; good for
//    sparse output rows.  Sized from an upper bound, values inserted by
//    column id, extracted sorted.
//  * DenseAccumulator — a dense value array indexed directly by column id
//    with a generation-stamped occupancy mask; good for dense output rows
//    (high compression ratio), wasteful for very sparse ones.
//  * SortMergeAccumulator — gather every (col, val) product into a flat
//    buffer, sort once at extraction and fold duplicates.  Lowest fixed
//    cost of the family: the right kernel for tiny rows where a hash
//    table's setup/probing dominates.
//  * RowMergeAccumulator — keeps each contributing B row as a pre-sorted
//    run and merges runs pairwise (binary row merging).  O(P log k) with
//    sequential access only: the kernel for heavy skewed rows whose hash
//    working set falls out of cache.
//
// All four implement one symbolic/numeric interface (Reserve / AddRun /
// AddRunSymbolic / size / ExtractSorted / Clear, plus single-entry Add
// convenience) and carry a static `Traits` block — the cost coefficients
// and preferred density/flop range the routing pass and the registry's
// cost model read.  Each is designed for reuse across many rows without
// per-row reallocation — the property the paper's pre-allocation scheme
// depends on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "sparse/types.hpp"

namespace oocgemm::kernels {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

/// Static per-strategy routing metadata: modeled cost coefficients (in
/// arbitrary "op" units; only ratios matter) and the preferred operating
/// range.  cost(row) = setup_cost + per_product_cost * P
///                   + log_factor * P * log2(max(P, 2))
///                   + width_cost * panel_cols
/// with P = flops / 2 the row's intermediate-product count.  A strategy is
/// eligible for a row when the estimated output density and the flop count
/// fall inside [min_density, max_density] x [min_flops, max_flops].
struct AccumulatorTraits {
  const char* name;
  double setup_cost;
  double per_product_cost;
  double log_factor;
  double width_cost;
  double min_density;
  double max_density;
  std::int64_t min_flops;
  std::int64_t max_flops;
};

class HashAccumulator {
 public:
  static constexpr AccumulatorTraits kTraits = {
      "hash", 16.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0, INT64_MAX};

  /// Ensures capacity for `max_entries` distinct columns (load factor .5).
  void Reserve(std::int64_t max_entries);

  /// Inserts (col, v), accumulating on collision.
  void Add(index_t col, value_t v);

  /// Symbolic insert: records the column only.
  void AddSymbolic(index_t col);

  /// Inserts a sorted run of `n` columns, values scaled by `scale`
  /// (`vals` may be null with scale ignored — symbolic).
  void AddRun(const index_t* cols, const value_t* vals, offset_t n,
              value_t scale);
  void AddRunSymbolic(const index_t* cols, offset_t n);

  std::int64_t size() const { return static_cast<std::int64_t>(used_.size()); }
  std::int64_t capacity() const { return static_cast<std::int64_t>(keys_.size()); }

  /// Total probe steps across every FindSlot since construction — the
  /// load-factor/clustering regression signal (adversarial key sets must
  /// stay near one probe per operation; see test_kernels_accumulators).
  std::int64_t total_probes() const { return probes_; }

  /// Writes the accumulated row sorted by column id; returns entry count.
  /// `cols_out` / `vals_out` must have room for size() entries.  `vals_out`
  /// may be null in symbolic mode.
  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  /// Forgets all entries; keeps capacity.  O(touched slots).
  void Clear();

 private:
  std::int64_t FindSlot(index_t col);
  void Grow(std::int64_t min_capacity);

  std::vector<index_t> keys_;    // kEmpty when vacant
  std::vector<value_t> vals_;
  std::vector<std::int64_t> used_;  // occupied slot indices, insertion order
  int shift_ = 64;                  // 64 - log2(capacity): top-bits slot hash
  std::int64_t probes_ = 0;
  static constexpr index_t kEmpty = -1;
};

class DenseAccumulator {
 public:
  // Width, not density, is what dense accumulation actually pays for: the
  // value/stamp arrays are touched per *product* but sized per *column*,
  // so a panel a few thousand columns wide stays cache-resident and cheap
  // at any output density, while a very wide panel goes cold.  Hence a low
  // density floor and a per-column width charge that crosses over hash at
  // roughly 60x the row's product count.
  static constexpr AccumulatorTraits kTraits = {
      "dense", 32.0, 0.40, 0.0, 0.01, 0.005, 1.0, 0, INT64_MAX};

  /// Width beyond which the dense value/stamp arrays are considered
  /// infeasible scratch (the registry's feasibility gate routes such
  /// panels to a sparse strategy instead).
  static constexpr index_t kMaxFeasibleCols = 1 << 22;

  /// Sizes the dense array for columns [0, num_cols).
  void Reserve(index_t num_cols);

  void Add(index_t col, value_t v);
  void AddSymbolic(index_t col);
  void AddRun(const index_t* cols, const value_t* vals, offset_t n,
              value_t scale);
  void AddRunSymbolic(const index_t* cols, offset_t n);

  std::int64_t size() const { return static_cast<std::int64_t>(touched_.size()); }

  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  /// O(1): bumps the generation stamp instead of clearing arrays.
  void Clear();

 private:
  std::vector<value_t> values_;
  std::vector<std::uint32_t> stamp_;
  std::vector<index_t> touched_;
  std::uint32_t generation_ = 1;
};

/// Gather-then-sort accumulation: append every product, sort by column at
/// finalization, fold duplicates.  No per-slot state at all, so the setup
/// cost is two vector-size checks — unbeatable on rows of a handful of
/// products, where even a cleared hash table costs more than the sort.
class SortMergeAccumulator {
 public:
  static constexpr AccumulatorTraits kTraits = {
      "sort", 2.0, 0.0, 0.30, 0.0, 0.0, 1.0, 0, 256};

  void Reserve(std::int64_t max_entries);

  void Add(index_t col, value_t v);
  void AddSymbolic(index_t col) { Add(col, 0.0); }
  void AddRun(const index_t* cols, const value_t* vals, offset_t n,
              value_t scale);
  void AddRunSymbolic(const index_t* cols, offset_t n);

  /// Finalizes (sort + duplicate fold) lazily, then reports distinct count.
  std::int64_t size();

  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  void Clear();

 private:
  void Finalize();

  std::vector<std::pair<index_t, value_t>> entries_;
  bool finalized_ = false;
};

/// Binary row merging: every contributing B row arrives as a run already
/// sorted by column id (the CSR invariant); runs are merged pairwise in
/// rounds until one remains, summing equal columns as they meet.  Purely
/// sequential passes over the data — P log2(k) work for k runs with no
/// random access, which is why it overtakes hashing on heavy skewed rows
/// whose tables no longer fit in cache.
class RowMergeAccumulator {
 public:
  static constexpr AccumulatorTraits kTraits = {
      "merge", 48.0, 0.75, 0.0, 0.0, 0.0, 0.02, 16384, INT64_MAX};

  void Reserve(std::int64_t max_entries);

  /// Single-entry inserts are runs of length one (API parity with the
  /// other strategies; pairwise merging handles them like any run).
  void Add(index_t col, value_t v);
  void AddSymbolic(index_t col) { Add(col, 0.0); }

  /// `cols` must be ascending within the run (CSR rows are).
  void AddRun(const index_t* cols, const value_t* vals, offset_t n,
              value_t scale);
  void AddRunSymbolic(const index_t* cols, offset_t n);

  std::int64_t size();

  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  void Clear();

 private:
  void Finalize();
  /// Appends run [lo, hi) of cols_/vals_ onto the merge buffers, folding
  /// entries equal to the buffer tail (keeps intra-run duplicates from
  /// surviving a round).
  void AppendRun(std::size_t lo, std::size_t hi, std::size_t tail_begin);

  std::vector<index_t> cols_, merge_cols_;
  std::vector<value_t> vals_, merge_vals_;
  std::vector<std::size_t> run_begin_;  // run i = [run_begin_[i], run_begin_[i+1])
  bool finalized_ = false;
};

/// Strategy selector used by the symbolic/numeric phases and the routing
/// pass.  kAuto routes per row (or per row group) through the kernel
/// registry's cost model; the other values force one strategy everywhere
/// (modulo the dense feasibility gate).
enum class AccumulatorKind {
  kAuto,
  kHash,
  kDense,
  kSortMerge,
  kRowMerge,
};

/// The paper's original two-way rule of thumb: dense accumulation pays off
/// when the row's intermediate-product count is a significant fraction of
/// the panel width.  Kept for the ablation bench; adaptive routing goes
/// through kernel_registry.hpp's RouteRow instead.
inline AccumulatorKind ChooseAccumulator(std::int64_t row_flops,
                                         index_t panel_cols) {
  return (row_flops / 2 >= static_cast<std::int64_t>(panel_cols) / 8)
             ? AccumulatorKind::kDense
             : AccumulatorKind::kHash;
}

}  // namespace oocgemm::kernels
