// Row accumulators for SpGEMM (Section II-B of the paper).
//
// Two strategies, matching the paper's in-core engine:
//  * HashAccumulator — open-addressing map keyed by column id; good for
//    sparse output rows.  Sized from an upper bound, values inserted by
//    column id, extracted sorted.
//  * DenseAccumulator — a dense value array indexed directly by column id
//    with a generation-stamped occupancy mask; good for dense output rows
//    (high compression ratio), wasteful for very sparse ones.
//
// Both support a symbolic mode (count distinct columns, no values) and a
// numeric mode, and are designed for reuse across many rows without
// per-row reallocation — the property the paper's pre-allocation scheme
// depends on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "sparse/types.hpp"

namespace oocgemm::kernels {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

class HashAccumulator {
 public:
  /// Ensures capacity for `max_entries` distinct columns (load factor .5).
  void Reserve(std::int64_t max_entries);

  /// Inserts (col, v), accumulating on collision.
  void Add(index_t col, value_t v);

  /// Symbolic insert: records the column only.
  void AddSymbolic(index_t col);

  std::int64_t size() const { return static_cast<std::int64_t>(used_.size()); }
  std::int64_t capacity() const { return static_cast<std::int64_t>(keys_.size()); }

  /// Writes the accumulated row sorted by column id; returns entry count.
  /// `cols_out` / `vals_out` must have room for size() entries.  `vals_out`
  /// may be null in symbolic mode.
  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  /// Forgets all entries; keeps capacity.  O(touched slots).
  void Clear();

 private:
  std::int64_t FindSlot(index_t col);
  void Grow(std::int64_t min_capacity);

  std::vector<index_t> keys_;    // kEmpty when vacant
  std::vector<value_t> vals_;
  std::vector<std::int64_t> used_;  // occupied slot indices, insertion order
  static constexpr index_t kEmpty = -1;
};

class DenseAccumulator {
 public:
  /// Sizes the dense array for columns [0, num_cols).
  void Reserve(index_t num_cols);

  void Add(index_t col, value_t v);
  void AddSymbolic(index_t col);

  std::int64_t size() const { return static_cast<std::int64_t>(touched_.size()); }

  std::int64_t ExtractSorted(index_t* cols_out, value_t* vals_out);

  /// O(1): bumps the generation stamp instead of clearing arrays.
  void Clear();

 private:
  std::vector<value_t> values_;
  std::vector<std::uint32_t> stamp_;
  std::vector<index_t> touched_;
  std::uint32_t generation_ = 1;
};

/// Strategy selector used by the symbolic/numeric phases.
enum class AccumulatorKind {
  kAuto,   // dense for work-heavy rows, hash otherwise (paper's choice)
  kHash,
  kDense,
};

/// The paper's rule of thumb: dense accumulation pays off when the row's
/// intermediate-product count is a significant fraction of the panel width.
inline AccumulatorKind ChooseAccumulator(std::int64_t row_flops,
                                         index_t panel_cols) {
  return (row_flops / 2 >= static_cast<std::int64_t>(panel_cols) / 8)
             ? AccumulatorKind::kDense
             : AccumulatorKind::kHash;
}

}  // namespace oocgemm::kernels
