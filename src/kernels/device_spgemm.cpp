#include "kernels/device_spgemm.hpp"

#include <algorithm>
#include <numeric>

#include "common/prefix_sum.hpp"
#include "kernels/kernel_registry.hpp"
#include "obs/kernel_metrics.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;
using vgpu::DevicePtr;
using vgpu::Region;

ChunkPipeline::ChunkPipeline(vgpu::Device& device,
                             const DeviceSpgemmOptions& options,
                             AccumulatorScratch& scratch)
    : device_(device), options_(options), scratch_(scratch) {}

Status ChunkPipeline::RunAnalysis(vgpu::HostContext& host,
                                  vgpu::Stream& stream,
                                  const DeviceCsr& a_panel,
                                  const DeviceCsr& b_panel,
                                  vgpu::DeviceMemorySource& source,
                                  const std::string& tag) {
  OOC_CHECK(stage_ == 0);
  OOC_CHECK(a_panel.cols == b_panel.rows);
  a_panel_ = &a_panel;
  b_panel_ = &b_panel;
  source_ = &source;
  tag_ = tag;

  const index_t rows = a_panel.rows;
  const CostModel& cm = options_.cost_model;
  product_ = ChunkProduct{};
  product_.rows = rows;
  product_.cols = b_panel.cols;

  auto flops_alloc = source.Allocate(
      host, static_cast<std::int64_t>(rows) * 8, tag + ".row_flops");
  if (!flops_alloc.ok()) return flops_alloc.status();
  product_.d_scratch_row_flops = flops_alloc.value();
  auto nnz_alloc = source.Allocate(host, static_cast<std::int64_t>(rows) * 8,
                                   tag + ".row_nnz");
  if (!nnz_alloc.ok()) return nnz_alloc.status();
  product_.d_scratch_row_nnz = nnz_alloc.value();

  const offset_t* a_ro = device_.As<offset_t>(a_panel.row_offsets);
  const index_t* a_ci = device_.As<index_t>(a_panel.col_ids);
  const offset_t* b_ro = device_.As<offset_t>(b_panel.row_offsets);
  std::int64_t* row_flops =
      device_.As<std::int64_t>(product_.d_scratch_row_flops);
  std::int64_t* row_nnz = device_.As<std::int64_t>(product_.d_scratch_row_nnz);

  device_.LaunchKernel(
      host, stream, tag + ".analysis", cm.GpuAnalysisSeconds(a_panel.nnz),
      {Region{a_panel.row_offsets.offset, a_panel.row_offsets.size, false},
       Region{a_panel.col_ids.offset, a_panel.col_ids.size, false},
       Region{b_panel.row_offsets.offset, b_panel.row_offsets.size, false},
       Region{product_.d_scratch_row_flops.offset,
              static_cast<std::int64_t>(rows) * 8, true},
       Region{product_.d_scratch_row_nnz.offset,
              static_cast<std::int64_t>(rows) * 8, true}},
      [=] {
        for (index_t r = 0; r < rows; ++r) {
          std::int64_t f = 0;
          for (offset_t k = a_ro[r]; k < a_ro[r + 1]; ++k) {
            const index_t mid = a_ci[k];
            f += b_ro[mid + 1] - b_ro[mid];
          }
          row_flops[r] = 2 * f;
          row_nnz[r] = 0;  // rows with no work keep a zero count
        }
      });

  // "Then, we transfer this collected information from device memory to the
  // host memory" — the small info transfer the asynchronous scheduler
  // deliberately issues before the previous chunk's payload (Fig. 6, #1).
  h_flops_.resize(static_cast<std::size_t>(rows));
  device_.MemcpyD2HAsync(host, stream, h_flops_.data(),
                         product_.d_scratch_row_flops,
                         static_cast<std::int64_t>(rows) * 8,
                         tag + ".analysis.info");
  device_.StreamSynchronize(host, stream);  // host grouping needs the info
  // Sticky-error checkpoint: a faulted kernel or info transfer leaves
  // h_flops_ stale (possibly from the previous chunk); grouping on stale
  // counts would size every later allocation from garbage.
  OOC_RETURN_IF_ERROR(device_.health());

  product_.flops = std::accumulate(h_flops_.begin(), h_flops_.end(),
                                   static_cast<std::int64_t>(0));
  // Pre-symbolic routing: per-group strategy from flops alone (occupancy
  // model density), mirroring the host path's first RouteRows pass.
  routed_ = RouteRows(h_flops_.data(), h_flops_.data(), nullptr,
                      h_flops_.size(), b_panel.cols, options_.accumulator,
                      options_.routing);
  stage_ = 1;
  return Status::Ok();
}

Status ChunkPipeline::RunSymbolic(vgpu::HostContext& host,
                                  vgpu::Stream& stream) {
  OOC_CHECK(stage_ == 1);
  const index_t rows = product_.rows;
  const CostModel& cm = options_.cost_model;
  const DeviceCsr& a_panel = *a_panel_;
  const DeviceCsr& b_panel = *b_panel_;

  const offset_t* a_ro = device_.As<offset_t>(a_panel.row_offsets);
  const index_t* a_ci = device_.As<index_t>(a_panel.col_ids);
  const offset_t* b_ro = device_.As<offset_t>(b_panel.row_offsets);
  const index_t* b_ci = device_.As<index_t>(b_panel.col_ids);
  std::int64_t* row_nnz = device_.As<std::int64_t>(product_.d_scratch_row_nnz);

  // cr estimate for the symbolic cost only; numeric uses the measured value.
  const double cr_estimate = 2.0;

  for (int g = 1; g < kNumRowGroups; ++g) {  // group 0 holds empty rows
    const auto& rows_in_group =
        routed_.groups.groups[static_cast<std::size_t>(g)];
    if (rows_in_group.empty()) continue;
    const AccumulatorKind kind = routed_.strategy[static_cast<std::size_t>(g)];
    std::int64_t group_flops = 0;
    for (index_t r : rows_in_group) {
      group_flops += h_flops_[static_cast<std::size_t>(r)];
    }
    const double kernel_seconds =
        cm.GpuSymbolicSeconds(group_flops, cr_estimate);
    obs::KernelMetricsFor(AccumulatorKindName(kind))
        .symbolic_seconds->Add(kernel_seconds);
    device_.LaunchKernel(
        host, stream,
        tag_ + ".symbolic.g" + std::to_string(g) + "." +
            AccumulatorKindName(kind),
        kernel_seconds,
        {Region{a_panel.col_ids.offset, a_panel.col_ids.size, false},
         Region{b_panel.col_ids.offset, b_panel.col_ids.size, false},
         Region{product_.d_scratch_row_nnz.offset,
                static_cast<std::int64_t>(rows) * 8, true}},
        [this, g, kind, a_ro, a_ci, b_ro, b_ci, row_nnz, &b_panel] {
          SymbolicRows(a_ro, a_ci, b_ro, b_ci, b_panel.cols,
                       routed_.groups.groups[static_cast<std::size_t>(g)],
                       h_flops_.data(), kind, scratch_, row_nnz);
        });
  }

  // Fig. 6, #3: the symbolic-info transfer.
  h_row_nnz_.resize(static_cast<std::size_t>(rows));
  device_.MemcpyD2HAsync(host, stream, h_row_nnz_.data(),
                         product_.d_scratch_row_nnz,
                         static_cast<std::int64_t>(rows) * 8,
                         tag_ + ".symbolic.info");
  device_.StreamSynchronize(host, stream);  // allocation sizing needs counts
  // Same checkpoint as the analysis info: never size the output arrays from
  // a readback a fault may have skipped or scrambled.
  OOC_RETURN_IF_ERROR(device_.health());

  product_.row_offsets.resize(static_cast<std::size_t>(rows) + 1);
  product_.nnz = ExclusiveScan(h_row_nnz_.data(), h_row_nnz_.size(),
                               product_.row_offsets.data());
  product_.compression_ratio =
      product_.nnz > 0 ? static_cast<double>(product_.flops) /
                             static_cast<double>(product_.nnz)
                       : 1.0;

  // Output allocation — the step that forbids asynchrony under dynamic
  // allocation: with a MallocMemorySource each call serializes the device.
  auto ro_alloc = source_->Allocate(
      host, static_cast<std::int64_t>(rows + 1) * sizeof(offset_t),
      tag_ + ".c.row_offsets");
  if (!ro_alloc.ok()) return ro_alloc.status();
  product_.d_row_offsets = ro_alloc.value();
  auto ci_alloc = source_->Allocate(
      host, product_.nnz * static_cast<std::int64_t>(sizeof(index_t)),
      tag_ + ".c.col_ids");
  if (!ci_alloc.ok()) return ci_alloc.status();
  product_.d_col_ids = ci_alloc.value();
  auto va_alloc = source_->Allocate(
      host, product_.nnz * static_cast<std::int64_t>(sizeof(value_t)),
      tag_ + ".c.values");
  if (!va_alloc.ok()) return va_alloc.status();
  product_.d_values = va_alloc.value();

  device_.MemcpyH2DAsync(host, stream, product_.d_row_offsets,
                         product_.row_offsets.data(),
                         static_cast<std::int64_t>(rows + 1) *
                             static_cast<std::int64_t>(sizeof(offset_t)),
                         tag_ + ".c.row_offsets");
  stage_ = 2;
  return Status::Ok();
}

void ChunkPipeline::RunNumeric(vgpu::HostContext& host, vgpu::Stream& stream) {
  OOC_CHECK(stage_ == 2);
  const CostModel& cm = options_.cost_model;
  const DeviceCsr& a_panel = *a_panel_;
  const DeviceCsr& b_panel = *b_panel_;

  const offset_t* a_ro = device_.As<offset_t>(a_panel.row_offsets);
  const index_t* a_ci = device_.As<index_t>(a_panel.col_ids);
  const value_t* a_va = device_.As<value_t>(a_panel.values);
  const offset_t* b_ro = device_.As<offset_t>(b_panel.row_offsets);
  const index_t* b_ci = device_.As<index_t>(b_panel.col_ids);
  const value_t* b_va = device_.As<value_t>(b_panel.values);
  const offset_t* c_ro = device_.As<offset_t>(product_.d_row_offsets);
  index_t* c_ci = device_.As<index_t>(product_.d_col_ids);
  value_t* c_va = device_.As<value_t>(product_.d_values);

  // "We re-assign rows of matrix A based on the number of non-zero elements
  // to achieve global load balance again" — regroup by output-row nnz, and
  // re-route each class now that exact densities are known.
  RoutedGroups numeric_routed =
      RouteRows(h_row_nnz_.data(), h_flops_.data(), h_row_nnz_.data(),
                h_row_nnz_.size(), b_panel.cols, options_.accumulator,
                options_.routing);
  RecordRoutedRows(numeric_routed);
  // Per-device flop accounting: paired with oocgemm_vgpu_kernel_seconds it
  // is the (flops, seconds) sample stream the cost-model calibrator fits a
  // per-device effective rate from.
  obs::MetricsRegistry::Default()
      .GetCounter("oocgemm_kernels_device_flops",
                  {{"device", std::to_string(device_.id())}},
                  "Numeric flops executed on this device")
      .Add(product_.flops);
  const double cr = product_.compression_ratio;

  for (int g = 0; g < kNumRowGroups; ++g) {
    const auto& rows_in_group =
        numeric_routed.groups.groups[static_cast<std::size_t>(g)];
    if (rows_in_group.empty()) continue;
    const AccumulatorKind kind =
        numeric_routed.strategy[static_cast<std::size_t>(g)];
    std::int64_t group_flops = 0;
    for (index_t r : rows_in_group) {
      group_flops += h_flops_[static_cast<std::size_t>(r)];
    }
    if (group_flops == 0) continue;  // empty rows: nothing to write
    const obs::KernelStrategyMetrics metrics =
        obs::KernelMetricsFor(AccumulatorKindName(kind));
    device_.LaunchKernelCosted(
        host, stream,
        tag_ + ".numeric.g" + std::to_string(g) + "." +
            AccumulatorKindName(kind),
        {Region{a_panel.col_ids.offset, a_panel.col_ids.size, false},
         Region{b_panel.col_ids.offset, b_panel.col_ids.size, false},
         Region{b_panel.values.offset, b_panel.values.size, false},
         Region{product_.d_col_ids.offset, product_.d_col_ids.size, true},
         Region{product_.d_values.offset, product_.d_values.size, true}},
        [&, kind, group_flops, cr, metrics]() -> double {
          NumericRows(a_ro, a_ci, a_va, b_ro, b_ci, b_va, b_panel.cols,
                      rows_in_group, h_flops_.data(), kind, scratch_, c_ro,
                      c_ci, c_va);
          const double seconds = cm.GpuNumericSeconds(group_flops, cr);
          metrics.numeric_seconds->Add(seconds);
          return seconds;
        });
  }
  if (options_.accumulator == AccumulatorKind::kAuto) {
    RecordRoutingQuality(numeric_routed, h_flops_.data(), h_row_nnz_.data(),
                         b_panel.cols);
  }
  stage_ = 3;
}

DeviceSpgemm::DeviceSpgemm(vgpu::Device& device, DeviceSpgemmOptions options)
    : device_(device), options_(std::move(options)) {}

StatusOr<ChunkProduct> DeviceSpgemm::Multiply(vgpu::HostContext& host,
                                              vgpu::Stream& stream,
                                              const DeviceCsr& a_panel,
                                              const DeviceCsr& b_panel,
                                              vgpu::DeviceMemorySource& source,
                                              const std::string& tag) {
  ChunkPipeline pipeline(device_, options_, scratch_);
  OOC_RETURN_IF_ERROR(
      pipeline.RunAnalysis(host, stream, a_panel, b_panel, source, tag));
  OOC_RETURN_IF_ERROR(pipeline.RunSymbolic(host, stream));
  pipeline.RunNumeric(host, stream);
  return pipeline.TakeProduct();
}

void ReleaseChunk(vgpu::HostContext& host, vgpu::DeviceMemorySource& source,
                  ChunkProduct& chunk) {
  source.Release(host, chunk.d_row_offsets);
  source.Release(host, chunk.d_col_ids);
  source.Release(host, chunk.d_values);
  source.Release(host, chunk.d_scratch_row_flops);
  source.Release(host, chunk.d_scratch_row_nnz);
  chunk.d_row_offsets = chunk.d_col_ids = chunk.d_values = vgpu::DevicePtr{};
  chunk.d_scratch_row_flops = chunk.d_scratch_row_nnz = vgpu::DevicePtr{};
}

StatusOr<Csr> MultiplyInCore(vgpu::Device& device, const Csr& a, const Csr& b,
                             DeviceSpgemmOptions options) {
  vgpu::HostContext host;
  vgpu::Stream* stream = device.CreateStream("incore");
  vgpu::MallocMemorySource source(device);

  auto da = UploadCsr(device, host, *stream, source, a, "A");
  if (!da.ok()) return da.status();
  auto db = UploadCsr(device, host, *stream, source, b, "B");
  if (!db.ok()) return db.status();

  DeviceSpgemm engine(device, options);
  auto chunk =
      engine.Multiply(host, *stream, da.value(), db.value(), source, "C");
  if (!chunk.ok()) return chunk.status();

  std::vector<index_t> cols(static_cast<std::size_t>(chunk->nnz));
  std::vector<value_t> vals(static_cast<std::size_t>(chunk->nnz));
  device.MemcpyD2HAsync(host, *stream, cols.data(), chunk->d_col_ids,
                        chunk->nnz * static_cast<std::int64_t>(sizeof(index_t)),
                        "C.col_ids");
  device.MemcpyD2HAsync(host, *stream, vals.data(), chunk->d_values,
                        chunk->nnz * static_cast<std::int64_t>(sizeof(value_t)),
                        "C.values");
  device.StreamSynchronize(host, *stream);
  if (Status health = device.health(); !health.ok()) {
    ReleaseChunk(host, source, chunk.value());
    ReleaseCsr(host, source, da.value());
    ReleaseCsr(host, source, db.value());
    return health;
  }

  Csr result(chunk->rows, chunk->cols, std::move(chunk->row_offsets),
             std::move(cols), std::move(vals));

  ReleaseChunk(host, source, chunk.value());
  ReleaseCsr(host, source, da.value());
  ReleaseCsr(host, source, db.value());
  return result;
}

}  // namespace oocgemm::kernels
