#include "kernels/spgemm_phases.hpp"

#include "kernels/kernel_registry.hpp"

namespace oocgemm::kernels {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

AccumulatorKind ResolveKind(AccumulatorKind kind, std::int64_t row_flops,
                            index_t b_cols) {
  if (kind == AccumulatorKind::kAuto) {
    return KernelRegistry::RouteRow(row_flops, b_cols);
  }
  // A forced strategy still honours the feasibility gate: dense scratch at
  // an infeasible panel width degrades to hash instead of allocating it.
  if (!KernelRegistry::StrategyFeasible(kind, b_cols)) {
    return AccumulatorKind::kHash;
  }
  return kind;
}

/// One row's symbolic pass through accumulator `acc` (any of the four
/// strategies — they share the Reserve/AddRunSymbolic/size/Clear surface).
template <typename Acc>
std::int64_t SymbolicRow(Acc& acc, const offset_t* a_row_offsets,
                         const index_t* a_col_ids,
                         const offset_t* b_row_offsets,
                         const index_t* b_col_ids, index_t r) {
  acc.Clear();
  for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
    const index_t mid = a_col_ids[ka];
    const offset_t lo = b_row_offsets[mid];
    acc.AddRunSymbolic(b_col_ids + lo, b_row_offsets[mid + 1] - lo);
  }
  return acc.size();
}

/// One row's numeric pass: accumulate scaled B-row runs, extract sorted.
template <typename Acc>
void NumericRow(Acc& acc, const offset_t* a_row_offsets,
                const index_t* a_col_ids, const value_t* a_values,
                const offset_t* b_row_offsets, const index_t* b_col_ids,
                const value_t* b_values, index_t r, index_t* cols_out,
                value_t* vals_out) {
  acc.Clear();
  for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
    const index_t mid = a_col_ids[ka];
    const offset_t lo = b_row_offsets[mid];
    acc.AddRun(b_col_ids + lo, b_values + lo, b_row_offsets[mid + 1] - lo,
               a_values[ka]);
  }
  acc.ExtractSorted(cols_out, vals_out);
}

void PrepareScratch(AccumulatorKind k, std::int64_t flops, index_t b_cols,
                    AccumulatorScratch& scratch) {
  const std::int64_t bound = std::max<std::int64_t>(flops / 2, 8);
  switch (k) {
    case AccumulatorKind::kHash:
      scratch.hash.Reserve(bound);
      break;
    case AccumulatorKind::kDense:
      scratch.dense.Reserve(b_cols);
      break;
    case AccumulatorKind::kSortMerge:
      scratch.sort.Reserve(bound);
      break;
    case AccumulatorKind::kRowMerge:
      scratch.merge.Reserve(bound);
      break;
    case AccumulatorKind::kAuto:
      break;  // resolved before this point
  }
}

}  // namespace

void SymbolicRows(const offset_t* a_row_offsets, const index_t* a_col_ids,
                  const offset_t* b_row_offsets, const index_t* b_col_ids,
                  index_t b_cols, const std::vector<index_t>& rows,
                  const std::int64_t* row_flops, AccumulatorKind kind,
                  AccumulatorScratch& scratch, std::int64_t* row_nnz_out) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    const std::int64_t flops = row_flops[r];
    const AccumulatorKind k = ResolveKind(kind, flops, b_cols);
    PrepareScratch(k, flops, b_cols, scratch);
    std::int64_t count = 0;
    switch (k) {
      case AccumulatorKind::kHash:
        count = SymbolicRow(scratch.hash, a_row_offsets, a_col_ids,
                            b_row_offsets, b_col_ids, r);
        break;
      case AccumulatorKind::kDense:
        count = SymbolicRow(scratch.dense, a_row_offsets, a_col_ids,
                            b_row_offsets, b_col_ids, r);
        break;
      case AccumulatorKind::kSortMerge:
        count = SymbolicRow(scratch.sort, a_row_offsets, a_col_ids,
                            b_row_offsets, b_col_ids, r);
        break;
      case AccumulatorKind::kRowMerge:
        count = SymbolicRow(scratch.merge, a_row_offsets, a_col_ids,
                            b_row_offsets, b_col_ids, r);
        break;
      case AccumulatorKind::kAuto:
        break;  // unreachable: ResolveKind never returns kAuto
    }
    row_nnz_out[r] = count;
  }
}

void NumericRows(const offset_t* a_row_offsets, const index_t* a_col_ids,
                 const value_t* a_values, const offset_t* b_row_offsets,
                 const index_t* b_col_ids, const value_t* b_values,
                 index_t b_cols, const std::vector<index_t>& rows,
                 const std::int64_t* row_flops, AccumulatorKind kind,
                 AccumulatorScratch& scratch, const offset_t* c_row_offsets,
                 index_t* c_col_ids, value_t* c_values) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    const std::int64_t flops = row_flops[r];
    const AccumulatorKind k = ResolveKind(kind, flops, b_cols);
    PrepareScratch(k, flops, b_cols, scratch);
    const offset_t out = c_row_offsets[r];
    switch (k) {
      case AccumulatorKind::kHash:
        NumericRow(scratch.hash, a_row_offsets, a_col_ids, a_values,
                   b_row_offsets, b_col_ids, b_values, r, c_col_ids + out,
                   c_values + out);
        break;
      case AccumulatorKind::kDense:
        NumericRow(scratch.dense, a_row_offsets, a_col_ids, a_values,
                   b_row_offsets, b_col_ids, b_values, r, c_col_ids + out,
                   c_values + out);
        break;
      case AccumulatorKind::kSortMerge:
        NumericRow(scratch.sort, a_row_offsets, a_col_ids, a_values,
                   b_row_offsets, b_col_ids, b_values, r, c_col_ids + out,
                   c_values + out);
        break;
      case AccumulatorKind::kRowMerge:
        NumericRow(scratch.merge, a_row_offsets, a_col_ids, a_values,
                   b_row_offsets, b_col_ids, b_values, r, c_col_ids + out,
                   c_values + out);
        break;
      case AccumulatorKind::kAuto:
        break;  // unreachable
    }
  }
}

}  // namespace oocgemm::kernels
