#include "kernels/spgemm_phases.hpp"

namespace oocgemm::kernels {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

AccumulatorKind ResolveKind(AccumulatorKind kind, std::int64_t row_flops,
                            index_t b_cols) {
  if (kind != AccumulatorKind::kAuto) return kind;
  return ChooseAccumulator(row_flops, b_cols);
}

}  // namespace

void SymbolicRows(const offset_t* a_row_offsets, const index_t* a_col_ids,
                  const offset_t* b_row_offsets, const index_t* b_col_ids,
                  index_t b_cols, const std::vector<index_t>& rows,
                  const std::int64_t* row_flops, AccumulatorKind kind,
                  AccumulatorScratch& scratch, std::int64_t* row_nnz_out) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    const std::int64_t flops = row_flops[r];
    const AccumulatorKind k = ResolveKind(kind, flops, b_cols);
    std::int64_t count = 0;
    if (k == AccumulatorKind::kDense) {
      scratch.dense.Reserve(b_cols);
      scratch.dense.Clear();
      for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
        const index_t mid = a_col_ids[ka];
        for (offset_t kb = b_row_offsets[mid]; kb < b_row_offsets[mid + 1]; ++kb) {
          scratch.dense.AddSymbolic(b_col_ids[kb]);
        }
      }
      count = scratch.dense.size();
    } else {
      scratch.hash.Reserve(std::max<std::int64_t>(flops / 2, 8));
      scratch.hash.Clear();
      for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
        const index_t mid = a_col_ids[ka];
        for (offset_t kb = b_row_offsets[mid]; kb < b_row_offsets[mid + 1]; ++kb) {
          scratch.hash.AddSymbolic(b_col_ids[kb]);
        }
      }
      count = scratch.hash.size();
    }
    row_nnz_out[r] = count;
  }
}

void NumericRows(const offset_t* a_row_offsets, const index_t* a_col_ids,
                 const value_t* a_values, const offset_t* b_row_offsets,
                 const index_t* b_col_ids, const value_t* b_values,
                 index_t b_cols, const std::vector<index_t>& rows,
                 const std::int64_t* row_flops, AccumulatorKind kind,
                 AccumulatorScratch& scratch, const offset_t* c_row_offsets,
                 index_t* c_col_ids, value_t* c_values) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    const std::int64_t flops = row_flops[r];
    const AccumulatorKind k = ResolveKind(kind, flops, b_cols);
    const offset_t out = c_row_offsets[r];
    if (k == AccumulatorKind::kDense) {
      scratch.dense.Reserve(b_cols);
      scratch.dense.Clear();
      for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
        const index_t mid = a_col_ids[ka];
        const value_t av = a_values[ka];
        for (offset_t kb = b_row_offsets[mid]; kb < b_row_offsets[mid + 1]; ++kb) {
          scratch.dense.Add(b_col_ids[kb], av * b_values[kb]);
        }
      }
      scratch.dense.ExtractSorted(c_col_ids + out, c_values + out);
    } else {
      scratch.hash.Reserve(std::max<std::int64_t>(flops / 2, 8));
      scratch.hash.Clear();
      for (offset_t ka = a_row_offsets[r]; ka < a_row_offsets[r + 1]; ++ka) {
        const index_t mid = a_col_ids[ka];
        const value_t av = a_values[ka];
        for (offset_t kb = b_row_offsets[mid]; kb < b_row_offsets[mid + 1]; ++kb) {
          scratch.hash.Add(b_col_ids[kb], av * b_values[kb]);
        }
      }
      scratch.hash.ExtractSorted(c_col_ids + out, c_values + out);
    }
  }
}

}  // namespace oocgemm::kernels
