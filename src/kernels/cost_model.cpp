#include "kernels/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/types.hpp"

namespace oocgemm::kernels {

double CostModel::NumericRate(double cr) const {
  const double rate = numeric_coeff * std::pow(std::max(cr, 1.0), numeric_exp);
  return std::clamp(rate, numeric_min, numeric_max);
}

double CostModel::GpuAnalysisSeconds(std::int64_t a_panel_nnz) const {
  return static_cast<double>(a_panel_nnz) / analysis_entry_rate;
}

double CostModel::GpuSymbolicSeconds(std::int64_t flops, double cr) const {
  return symbolic_fraction * GpuNumericSeconds(flops, cr);
}

double CostModel::GpuNumericSeconds(std::int64_t flops, double cr) const {
  return group_imbalance_factor * static_cast<double>(flops) / NumericRate(cr);
}

double CostModel::GpuEndToEndSeconds(std::int64_t flops, double cr,
                                     double d2h_bandwidth) const {
  const double nnz_out = static_cast<double>(flops) / std::max(cr, 1.0);
  const double transfer =
      nnz_out * static_cast<double>(sparse::kBytesPerNnz) / d2h_bandwidth;
  return GpuSymbolicSeconds(flops, cr) + GpuNumericSeconds(flops, cr) + transfer;
}

double CostModel::CpuChunkSeconds(std::int64_t flops, double cr) const {
  const double per_flop = cpu_seconds_per_flop_coeff /
                          std::pow(std::max(cr, 1.0), cpu_flop_exponent);
  return cpu_chunk_overhead + static_cast<double>(flops) * per_flop;
}

}  // namespace oocgemm::kernels
