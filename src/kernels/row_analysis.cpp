#include "kernels/row_analysis.hpp"

#include "common/status.hpp"

namespace oocgemm::kernels {

using sparse::index_t;
using sparse::offset_t;

void AnalyzeRows(const sparse::Csr& a, index_t row_begin, index_t row_end,
                 const std::vector<std::int64_t>& b_row_nnz,
                 std::int64_t* flops_out) {
  OOC_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows());
  OOC_CHECK(b_row_nnz.size() == static_cast<std::size_t>(a.cols()));
  for (index_t r = row_begin; r < row_end; ++r) {
    std::int64_t f = 0;
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      f += b_row_nnz[static_cast<std::size_t>(
          a.col_ids()[static_cast<std::size_t>(k)])];
    }
    flops_out[r - row_begin] = 2 * f;
  }
}

std::vector<std::int64_t> RowNnz(const sparse::Csr& m) {
  std::vector<std::int64_t> nnz(static_cast<std::size_t>(m.rows()));
  for (index_t r = 0; r < m.rows(); ++r) {
    nnz[static_cast<std::size_t>(r)] = m.row_nnz(r);
  }
  return nnz;
}

}  // namespace oocgemm::kernels
