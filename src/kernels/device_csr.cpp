#include "kernels/device_csr.hpp"

#include <vector>

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {
std::int64_t Align(std::int64_t v) { return (v + 255) / 256 * 256; }
}  // namespace

std::int64_t DeviceCsrBytes(index_t rows, std::int64_t nnz) {
  return Align(static_cast<std::int64_t>(rows + 1) * sizeof(offset_t)) +
         Align(nnz * static_cast<std::int64_t>(sizeof(index_t))) +
         Align(nnz * static_cast<std::int64_t>(sizeof(value_t)));
}

std::int64_t DeviceCsrBytes(const Csr& m) {
  return DeviceCsrBytes(m.rows(), m.nnz());
}

StatusOr<DeviceCsr> UploadCsr(vgpu::Device& device, vgpu::HostContext& host,
                              vgpu::Stream& stream,
                              vgpu::DeviceMemorySource& source, const Csr& m,
                              const std::string& label, bool pinned) {
  DeviceCsr d;
  d.rows = m.rows();
  d.cols = m.cols();
  d.nnz = m.nnz();

  auto ro = source.Allocate(
      host, static_cast<std::int64_t>(m.row_offsets().size() * sizeof(offset_t)),
      label + ".row_offsets");
  if (!ro.ok()) return ro.status();
  d.row_offsets = ro.value();

  auto ci = source.Allocate(host, d.nnz * static_cast<std::int64_t>(sizeof(index_t)),
                            label + ".col_ids");
  if (!ci.ok()) return ci.status();
  d.col_ids = ci.value();

  auto va = source.Allocate(host, d.nnz * static_cast<std::int64_t>(sizeof(value_t)),
                            label + ".values");
  if (!va.ok()) return va.status();
  d.values = va.value();

  device.MemcpyH2DAsync(host, stream, d.row_offsets, m.row_offsets().data(),
                        static_cast<std::int64_t>(m.row_offsets().size() *
                                                  sizeof(offset_t)),
                        label + ".row_offsets", pinned);
  device.MemcpyH2DAsync(host, stream, d.col_ids, m.col_ids().data(),
                        d.nnz * static_cast<std::int64_t>(sizeof(index_t)),
                        label + ".col_ids", pinned);
  device.MemcpyH2DAsync(host, stream, d.values, m.values().data(),
                        d.nnz * static_cast<std::int64_t>(sizeof(value_t)),
                        label + ".values", pinned);
  return d;
}

void ReleaseCsr(vgpu::HostContext& host, vgpu::DeviceMemorySource& source,
                DeviceCsr& m) {
  source.Release(host, m.row_offsets);
  source.Release(host, m.col_ids);
  source.Release(host, m.values);
  m = DeviceCsr{};
}

Csr DownloadCsr(vgpu::Device& device, vgpu::HostContext& host,
                const DeviceCsr& m) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(m.rows) + 1);
  std::vector<index_t> cols(static_cast<std::size_t>(m.nnz));
  std::vector<value_t> vals(static_cast<std::size_t>(m.nnz));
  device.MemcpyD2H(host, offsets.data(), m.row_offsets,
                   static_cast<std::int64_t>(offsets.size() * sizeof(offset_t)),
                   "download.row_offsets");
  device.MemcpyD2H(host, cols.data(), m.col_ids,
                   m.nnz * static_cast<std::int64_t>(sizeof(index_t)),
                   "download.col_ids");
  device.MemcpyD2H(host, vals.data(), m.values,
                   m.nnz * static_cast<std::int64_t>(sizeof(value_t)),
                   "download.values");
  return Csr(m.rows, m.cols, std::move(offsets), std::move(cols),
             std::move(vals));
}

}  // namespace oocgemm::kernels
