#include "kernels/cpu_spgemm.hpp"

#include <algorithm>
#include <vector>

#include "common/prefix_sum.hpp"
#include "kernels/row_analysis.hpp"
#include "kernels/spgemm_phases.hpp"

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

struct ThreadScratch {
  AccumulatorScratch acc;
};

Csr RunTwoPhase(const Csr& a, const Csr& b, ThreadPool* pool,
                const CpuSpgemmOptions& options) {
  OOC_CHECK(a.cols() == b.rows());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const std::size_t num_threads = pool ? pool->num_threads() : 1;
  std::vector<ThreadScratch> scratch(num_threads);

  // Row analysis (flops per row drive the accumulator choice).
  std::vector<std::int64_t> b_row_nnz = RowNnz(b);
  std::vector<std::int64_t> row_flops(n);
  std::vector<std::int64_t> row_nnz(n);

  auto analyze_block = [&](std::size_t lo, std::size_t hi, std::size_t /*w*/) {
    AnalyzeRows(a, static_cast<index_t>(lo), static_cast<index_t>(hi),
                b_row_nnz, row_flops.data() + lo);
  };

  // Symbolic phase.
  auto symbolic_block = [&](std::size_t lo, std::size_t hi, std::size_t w) {
    std::vector<index_t> rows(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      rows[i - lo] = static_cast<index_t>(i);
    }
    SymbolicRows(a.row_offsets().data(), a.col_ids().data(),
                 b.row_offsets().data(), b.col_ids().data(), b.cols(), rows,
                 row_flops.data(), options.accumulator, scratch[w].acc,
                 row_nnz.data());
  };

  if (pool) {
    pool->ParallelFor(0, n, analyze_block, options.min_grain);
    pool->ParallelFor(0, n, symbolic_block, options.min_grain);
  } else {
    analyze_block(0, n, 0);
    symbolic_block(0, n, 0);
  }

  std::vector<offset_t> row_offsets(n + 1);
  const std::int64_t nnz =
      ExclusiveScan(row_nnz.data(), n, row_offsets.data());

  std::vector<index_t> out_cols(static_cast<std::size_t>(nnz));
  std::vector<value_t> out_vals(static_cast<std::size_t>(nnz));

  // Numeric phase.
  auto numeric_block = [&](std::size_t lo, std::size_t hi, std::size_t w) {
    std::vector<index_t> rows(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      rows[i - lo] = static_cast<index_t>(i);
    }
    NumericRows(a.row_offsets().data(), a.col_ids().data(), a.values().data(),
                b.row_offsets().data(), b.col_ids().data(), b.values().data(),
                b.cols(), rows, row_flops.data(), options.accumulator,
                scratch[w].acc, row_offsets.data(), out_cols.data(),
                out_vals.data());
  };
  if (pool) {
    pool->ParallelFor(0, n, numeric_block, options.min_grain);
  } else {
    numeric_block(0, n, 0);
  }

  return Csr(a.rows(), b.cols(), std::move(row_offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace

Csr CpuSpgemm(const Csr& a, const Csr& b, ThreadPool& pool,
              const CpuSpgemmOptions& options) {
  return RunTwoPhase(a, b, &pool, options);
}

Csr CpuSpgemmSerial(const Csr& a, const Csr& b,
                    const CpuSpgemmOptions& options) {
  return RunTwoPhase(a, b, nullptr, options);
}

}  // namespace oocgemm::kernels
