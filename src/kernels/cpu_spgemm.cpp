#include "kernels/cpu_spgemm.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/prefix_sum.hpp"
#include "kernels/binning.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/row_analysis.hpp"
#include "kernels/spgemm_phases.hpp"
#include "obs/kernel_metrics.hpp"

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

struct ThreadScratch {
  AccumulatorScratch acc;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `body(rows_slice, worker)` over one routed group, parallelized
/// across slices of the group's row list, and charges the group's wall time
/// to the given per-strategy double counter.
template <typename Body>
void ForEachGroup(const RoutedGroups& routed, ThreadPool* pool,
                  std::size_t min_grain, bool symbolic, Body body) {
  for (int g = 0; g < kNumRowGroups; ++g) {
    const auto& group_rows = routed.groups.groups[static_cast<std::size_t>(g)];
    if (group_rows.empty()) continue;
    const AccumulatorKind kind = routed.strategy[static_cast<std::size_t>(g)];
    const auto t0 = std::chrono::steady_clock::now();
    auto block = [&](std::size_t lo, std::size_t hi, std::size_t w) {
      std::vector<index_t> rows(group_rows.begin() + static_cast<std::ptrdiff_t>(lo),
                                group_rows.begin() + static_cast<std::ptrdiff_t>(hi));
      body(rows, kind, w);
    };
    if (pool) {
      pool->ParallelFor(0, group_rows.size(), block, min_grain);
    } else {
      block(0, group_rows.size(), 0);
    }
    const obs::KernelStrategyMetrics m =
        obs::KernelMetricsFor(AccumulatorKindName(kind));
    (symbolic ? m.symbolic_seconds : m.numeric_seconds)->Add(SecondsSince(t0));
  }
}

Csr RunTwoPhase(const Csr& a, const Csr& b, ThreadPool* pool,
                const CpuSpgemmOptions& options) {
  OOC_CHECK(a.cols() == b.rows());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const std::size_t num_threads = pool ? pool->num_threads() : 1;
  std::vector<ThreadScratch> scratch(num_threads);

  // Row analysis (flops per row drive the routing decision).
  std::vector<std::int64_t> b_row_nnz = RowNnz(b);
  std::vector<std::int64_t> row_flops(n);
  std::vector<std::int64_t> row_nnz(n);

  auto analyze_block = [&](std::size_t lo, std::size_t hi, std::size_t /*w*/) {
    AnalyzeRows(a, static_cast<index_t>(lo), static_cast<index_t>(hi),
                b_row_nnz, row_flops.data() + lo);
  };
  if (pool) {
    pool->ParallelFor(0, n, analyze_block, options.min_grain);
  } else {
    analyze_block(0, n, 0);
  }

  // Pre-symbolic routing: density comes from the occupancy model since no
  // exact output nnz exists yet.
  const RoutedGroups routed_symbolic =
      RouteRows(row_flops.data(), row_flops.data(), nullptr, n, b.cols(),
                options.accumulator, options.routing);

  // Symbolic phase, one (possibly parallel) sweep per routed work class.
  ForEachGroup(routed_symbolic, pool, options.min_grain, /*symbolic=*/true,
               [&](const std::vector<index_t>& rows, AccumulatorKind kind,
                   std::size_t w) {
                 SymbolicRows(a.row_offsets().data(), a.col_ids().data(),
                              b.row_offsets().data(), b.col_ids().data(),
                              b.cols(), rows, row_flops.data(), kind,
                              scratch[w].acc, row_nnz.data());
               });

  std::vector<offset_t> row_offsets(n + 1);
  const std::int64_t nnz =
      ExclusiveScan(row_nnz.data(), n, row_offsets.data());

  std::vector<index_t> out_cols(static_cast<std::size_t>(nnz));
  std::vector<value_t> out_vals(static_cast<std::size_t>(nnz));

  // Re-route on exact per-row nnz for the numeric phase — the symbolic
  // pass upgraded the density estimate for free.
  const RoutedGroups routed_numeric =
      RouteRows(row_flops.data(), row_flops.data(), row_nnz.data(), n,
                b.cols(), options.accumulator, options.routing);
  RecordRoutedRows(routed_numeric);

  ForEachGroup(routed_numeric, pool, options.min_grain, /*symbolic=*/false,
               [&](const std::vector<index_t>& rows, AccumulatorKind kind,
                   std::size_t w) {
                 NumericRows(a.row_offsets().data(), a.col_ids().data(),
                             a.values().data(), b.row_offsets().data(),
                             b.col_ids().data(), b.values().data(), b.cols(),
                             rows, row_flops.data(), kind, scratch[w].acc,
                             row_offsets.data(), out_cols.data(),
                             out_vals.data());
               });

  if (options.accumulator == AccumulatorKind::kAuto) {
    RecordRoutingQuality(routed_numeric, row_flops.data(), row_nnz.data(),
                         b.cols());
  }

  return Csr(a.rows(), b.cols(), std::move(row_offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace

Csr CpuSpgemm(const Csr& a, const Csr& b, ThreadPool& pool,
              const CpuSpgemmOptions& options) {
  return RunTwoPhase(a, b, &pool, options);
}

Csr CpuSpgemmSerial(const Csr& a, const Csr& b,
                    const CpuSpgemmOptions& options) {
  return RunTwoPhase(a, b, nullptr, options);
}

}  // namespace oocgemm::kernels
