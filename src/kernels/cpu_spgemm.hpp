// Multicore CPU SpGEMM in the style of Nagasaka et al. (the paper's CPU
// baseline and the CPU half of the hybrid executor, Section III-C).
//
// Two-phase hash algorithm: a parallel symbolic pass counts output-row nnz
// with per-thread hash tables, a prefix sum sizes the output, and a
// parallel numeric pass fills it.  Per-thread accumulators are reused
// across rows (no allocation in the row loop).  The paper selected this
// implementation over MKL because it handles 64-bit offsets (large
// matrices) and is faster on small ones.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "kernels/accumulators.hpp"
#include "kernels/kernel_registry.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::kernels {

struct CpuSpgemmOptions {
  AccumulatorKind accumulator = AccumulatorKind::kHash;  // Nagasaka's choice
  /// Rows per parallel block (amortizes task dispatch).
  std::size_t min_grain = 64;
  /// Calibrated routing scales (identity = static cost model).
  RouteCalibration routing;
};

/// C = A * B using `pool` workers.  Aborts on dimension mismatch.
sparse::Csr CpuSpgemm(const sparse::Csr& a, const sparse::Csr& b,
                      ThreadPool& pool, const CpuSpgemmOptions& options = {});

/// Serial convenience (uses a degenerate pool-free path).
sparse::Csr CpuSpgemmSerial(const sparse::Csr& a, const sparse::Csr& b,
                            const CpuSpgemmOptions& options = {});

}  // namespace oocgemm::kernels
