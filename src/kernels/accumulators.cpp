#include "kernels/accumulators.hpp"

namespace oocgemm::kernels {

namespace {
std::int64_t NextPow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t MixHash(index_t col) {
  // Fibonacci hashing of the column id.
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) *
         0x9e3779b97f4a7c15ull;
}
}  // namespace

void HashAccumulator::Reserve(std::int64_t max_entries) {
  const std::int64_t want = NextPow2(std::max<std::int64_t>(16, max_entries * 2));
  if (want > capacity()) Grow(want);
}

std::int64_t HashAccumulator::FindSlot(index_t col) {
  const std::int64_t mask = capacity() - 1;
  std::int64_t slot = static_cast<std::int64_t>(MixHash(col) >> 32) & mask;
  for (;;) {
    const index_t k = keys_[static_cast<std::size_t>(slot)];
    if (k == col || k == kEmpty) return slot;
    slot = (slot + 1) & mask;
  }
}

void HashAccumulator::Grow(std::int64_t min_capacity) {
  std::vector<index_t> old_keys = std::move(keys_);
  std::vector<value_t> old_vals = std::move(vals_);
  std::vector<std::int64_t> old_used = std::move(used_);
  keys_.assign(static_cast<std::size_t>(
                   NextPow2(std::max<std::int64_t>(16, min_capacity))),
               kEmpty);
  vals_.assign(keys_.size(), 0.0);
  used_.clear();
  used_.reserve(keys_.size() / 2);
  for (std::int64_t slot : old_used) {
    const index_t col = old_keys[static_cast<std::size_t>(slot)];
    Add(col, old_vals[static_cast<std::size_t>(slot)]);
  }
}

void HashAccumulator::Add(index_t col, value_t v) {
  if (size() * 2 >= capacity()) Grow(capacity() * 2);
  const std::int64_t slot = FindSlot(col);
  if (keys_[static_cast<std::size_t>(slot)] == kEmpty) {
    keys_[static_cast<std::size_t>(slot)] = col;
    vals_[static_cast<std::size_t>(slot)] = v;
    used_.push_back(slot);
  } else {
    vals_[static_cast<std::size_t>(slot)] += v;
  }
}

void HashAccumulator::AddSymbolic(index_t col) { Add(col, 0.0); }

std::int64_t HashAccumulator::ExtractSorted(index_t* cols_out,
                                            value_t* vals_out) {
  std::sort(used_.begin(), used_.end(), [this](std::int64_t a, std::int64_t b) {
    return keys_[static_cast<std::size_t>(a)] < keys_[static_cast<std::size_t>(b)];
  });
  std::int64_t n = 0;
  for (std::int64_t slot : used_) {
    cols_out[n] = keys_[static_cast<std::size_t>(slot)];
    if (vals_out) vals_out[n] = vals_[static_cast<std::size_t>(slot)];
    ++n;
  }
  return n;
}

void HashAccumulator::Clear() {
  for (std::int64_t slot : used_) keys_[static_cast<std::size_t>(slot)] = kEmpty;
  used_.clear();
}

void DenseAccumulator::Reserve(index_t num_cols) {
  if (static_cast<std::size_t>(num_cols) > values_.size()) {
    values_.assign(static_cast<std::size_t>(num_cols), 0.0);
    stamp_.assign(static_cast<std::size_t>(num_cols), 0);
  }
}

void DenseAccumulator::Add(index_t col, value_t v) {
  OOC_CHECK(static_cast<std::size_t>(col) < values_.size());
  if (stamp_[static_cast<std::size_t>(col)] != generation_) {
    stamp_[static_cast<std::size_t>(col)] = generation_;
    values_[static_cast<std::size_t>(col)] = v;
    touched_.push_back(col);
  } else {
    values_[static_cast<std::size_t>(col)] += v;
  }
}

void DenseAccumulator::AddSymbolic(index_t col) { Add(col, 0.0); }

std::int64_t DenseAccumulator::ExtractSorted(index_t* cols_out,
                                             value_t* vals_out) {
  std::sort(touched_.begin(), touched_.end());
  std::int64_t n = 0;
  for (index_t col : touched_) {
    cols_out[n] = col;
    if (vals_out) vals_out[n] = values_[static_cast<std::size_t>(col)];
    ++n;
  }
  return n;
}

void DenseAccumulator::Clear() {
  touched_.clear();
  ++generation_;
  if (generation_ == 0) {  // stamp wrap: invalidate everything explicitly
    stamp_.assign(stamp_.size(), 0);
    generation_ = 1;
  }
}

}  // namespace oocgemm::kernels
