#include "kernels/accumulators.hpp"

namespace oocgemm::kernels {

namespace {
std::int64_t NextPow2(std::int64_t v) {
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

int Log2Pow2(std::int64_t pow2) {
  int lg = 0;
  while ((static_cast<std::int64_t>(1) << lg) < pow2) ++lg;
  return lg;
}

std::uint64_t MixHash(index_t col) {
  // Fibonacci hashing of the column id.
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) *
         0x9e3779b97f4a7c15ull;
}
}  // namespace

void HashAccumulator::Reserve(std::int64_t max_entries) {
  const std::int64_t want = NextPow2(std::max<std::int64_t>(16, max_entries * 2));
  if (want > capacity()) Grow(want);
}

std::int64_t HashAccumulator::FindSlot(index_t col) {
  const std::int64_t mask = capacity() - 1;
  // Top bits of the Fibonacci product, not middle bits masked off: the
  // multiply pushes its best-mixed bits to the top of the word, and taking
  // `(hash >> 32) & mask` instead selects a fixed middle window on which
  // structured key families (e.g. column ids a constant stride apart, or
  // powers of two) coincide — every such key then lands in one slot and
  // linear probing degrades to an O(n^2) crawl.  See the crafted-key
  // regression test in test_kernels_accumulators.cpp.
  std::int64_t slot = static_cast<std::int64_t>(MixHash(col) >> shift_);
  for (;;) {
    ++probes_;
    const index_t k = keys_[static_cast<std::size_t>(slot)];
    if (k == col || k == kEmpty) return slot;
    slot = (slot + 1) & mask;
  }
}

void HashAccumulator::Grow(std::int64_t min_capacity) {
  std::vector<index_t> old_keys = std::move(keys_);
  std::vector<value_t> old_vals = std::move(vals_);
  std::vector<std::int64_t> old_used = std::move(used_);
  keys_.assign(static_cast<std::size_t>(
                   NextPow2(std::max<std::int64_t>(16, min_capacity))),
               kEmpty);
  vals_.assign(keys_.size(), 0.0);
  shift_ = 64 - Log2Pow2(capacity());
  used_.clear();
  used_.reserve(keys_.size() / 2);
  for (std::int64_t slot : old_used) {
    const index_t col = old_keys[static_cast<std::size_t>(slot)];
    Add(col, old_vals[static_cast<std::size_t>(slot)]);
  }
}

void HashAccumulator::Add(index_t col, value_t v) {
  if (size() * 2 >= capacity()) Grow(capacity() * 2);
  const std::int64_t slot = FindSlot(col);
  if (keys_[static_cast<std::size_t>(slot)] == kEmpty) {
    keys_[static_cast<std::size_t>(slot)] = col;
    vals_[static_cast<std::size_t>(slot)] = v;
    used_.push_back(slot);
  } else {
    vals_[static_cast<std::size_t>(slot)] += v;
  }
}

void HashAccumulator::AddSymbolic(index_t col) { Add(col, 0.0); }

void HashAccumulator::AddRun(const index_t* cols, const value_t* vals,
                             offset_t n, value_t scale) {
  for (offset_t i = 0; i < n; ++i) {
    Add(cols[i], vals ? scale * vals[i] : 0.0);
  }
}

void HashAccumulator::AddRunSymbolic(const index_t* cols, offset_t n) {
  AddRun(cols, nullptr, n, 0.0);
}

std::int64_t HashAccumulator::ExtractSorted(index_t* cols_out,
                                            value_t* vals_out) {
  std::sort(used_.begin(), used_.end(), [this](std::int64_t a, std::int64_t b) {
    return keys_[static_cast<std::size_t>(a)] < keys_[static_cast<std::size_t>(b)];
  });
  std::int64_t n = 0;
  for (std::int64_t slot : used_) {
    cols_out[n] = keys_[static_cast<std::size_t>(slot)];
    if (vals_out) vals_out[n] = vals_[static_cast<std::size_t>(slot)];
    ++n;
  }
  return n;
}

void HashAccumulator::Clear() {
  for (std::int64_t slot : used_) keys_[static_cast<std::size_t>(slot)] = kEmpty;
  used_.clear();
}

void DenseAccumulator::Reserve(index_t num_cols) {
  if (static_cast<std::size_t>(num_cols) > values_.size()) {
    values_.assign(static_cast<std::size_t>(num_cols), 0.0);
    stamp_.assign(static_cast<std::size_t>(num_cols), 0);
  }
}

void DenseAccumulator::Add(index_t col, value_t v) {
  OOC_CHECK(static_cast<std::size_t>(col) < values_.size());
  if (stamp_[static_cast<std::size_t>(col)] != generation_) {
    stamp_[static_cast<std::size_t>(col)] = generation_;
    values_[static_cast<std::size_t>(col)] = v;
    touched_.push_back(col);
  } else {
    values_[static_cast<std::size_t>(col)] += v;
  }
}

void DenseAccumulator::AddSymbolic(index_t col) { Add(col, 0.0); }

void DenseAccumulator::AddRun(const index_t* cols, const value_t* vals,
                              offset_t n, value_t scale) {
  for (offset_t i = 0; i < n; ++i) {
    Add(cols[i], vals ? scale * vals[i] : 0.0);
  }
}

void DenseAccumulator::AddRunSymbolic(const index_t* cols, offset_t n) {
  AddRun(cols, nullptr, n, 0.0);
}

std::int64_t DenseAccumulator::ExtractSorted(index_t* cols_out,
                                             value_t* vals_out) {
  std::sort(touched_.begin(), touched_.end());
  std::int64_t n = 0;
  for (index_t col : touched_) {
    cols_out[n] = col;
    if (vals_out) vals_out[n] = values_[static_cast<std::size_t>(col)];
    ++n;
  }
  return n;
}

void DenseAccumulator::Clear() {
  touched_.clear();
  ++generation_;
  if (generation_ == 0) {  // stamp wrap: invalidate everything explicitly
    stamp_.assign(stamp_.size(), 0);
    generation_ = 1;
  }
}

void SortMergeAccumulator::Reserve(std::int64_t max_entries) {
  entries_.reserve(static_cast<std::size_t>(std::max<std::int64_t>(0, max_entries)));
}

void SortMergeAccumulator::Add(index_t col, value_t v) {
  entries_.emplace_back(col, v);
  finalized_ = false;
}

void SortMergeAccumulator::AddRun(const index_t* cols, const value_t* vals,
                                  offset_t n, value_t scale) {
  for (offset_t i = 0; i < n; ++i) {
    entries_.emplace_back(cols[i], vals ? scale * vals[i] : 0.0);
  }
  if (n > 0) finalized_ = false;
}

void SortMergeAccumulator::AddRunSymbolic(const index_t* cols, offset_t n) {
  AddRun(cols, nullptr, n, 0.0);
}

void SortMergeAccumulator::Finalize() {
  if (finalized_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const std::pair<index_t, value_t>& a,
               const std::pair<index_t, value_t>& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].first == entries_[i].first) {
      entries_[out - 1].second += entries_[i].second;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
  finalized_ = true;
}

std::int64_t SortMergeAccumulator::size() {
  Finalize();
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t SortMergeAccumulator::ExtractSorted(index_t* cols_out,
                                                 value_t* vals_out) {
  Finalize();
  std::int64_t n = 0;
  for (const auto& [col, val] : entries_) {
    cols_out[n] = col;
    if (vals_out) vals_out[n] = val;
    ++n;
  }
  return n;
}

void SortMergeAccumulator::Clear() {
  entries_.clear();
  finalized_ = false;
}

void RowMergeAccumulator::Reserve(std::int64_t max_entries) {
  const std::size_t want =
      static_cast<std::size_t>(std::max<std::int64_t>(0, max_entries));
  cols_.reserve(want);
  vals_.reserve(want);
}

void RowMergeAccumulator::Add(index_t col, value_t v) {
  run_begin_.push_back(cols_.size());
  cols_.push_back(col);
  vals_.push_back(v);
  finalized_ = false;
}

void RowMergeAccumulator::AddRun(const index_t* cols, const value_t* vals,
                                 offset_t n, value_t scale) {
  if (n <= 0) return;
  run_begin_.push_back(cols_.size());
  cols_.insert(cols_.end(), cols, cols + n);
  if (vals) {
    for (offset_t i = 0; i < n; ++i) vals_.push_back(scale * vals[i]);
  } else {
    vals_.insert(vals_.end(), static_cast<std::size_t>(n), 0.0);
  }
  finalized_ = false;
}

void RowMergeAccumulator::AddRunSymbolic(const index_t* cols, offset_t n) {
  AddRun(cols, nullptr, n, 0.0);
}

void RowMergeAccumulator::AppendRun(std::size_t lo, std::size_t hi,
                                    std::size_t tail_begin) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (merge_cols_.size() > tail_begin && merge_cols_.back() == cols_[i]) {
      merge_vals_.back() += vals_[i];
    } else {
      merge_cols_.push_back(cols_[i]);
      merge_vals_.push_back(vals_[i]);
    }
  }
}

void RowMergeAccumulator::Finalize() {
  if (finalized_) return;
  // Pairwise (binary) merge rounds: each round halves the run count,
  // merging adjacent sorted runs two at a time and summing equal columns
  // where they meet.  All passes are sequential scans.
  while (run_begin_.size() > 1) {
    merge_cols_.clear();
    merge_vals_.clear();
    std::vector<std::size_t> next_begin;
    run_begin_.push_back(cols_.size());  // sentinel for this round
    for (std::size_t r = 0; r + 1 < run_begin_.size(); r += 2) {
      next_begin.push_back(merge_cols_.size());
      const std::size_t tail = merge_cols_.size();
      if (r + 2 < run_begin_.size()) {
        std::size_t i = run_begin_[r], iend = run_begin_[r + 1];
        std::size_t j = run_begin_[r + 1], jend = run_begin_[r + 2];
        while (i < iend && j < jend) {
          std::size_t* take = cols_[i] <= cols_[j] ? &i : &j;
          if (merge_cols_.size() > tail && merge_cols_.back() == cols_[*take]) {
            merge_vals_.back() += vals_[*take];
          } else {
            merge_cols_.push_back(cols_[*take]);
            merge_vals_.push_back(vals_[*take]);
          }
          ++*take;
        }
        AppendRun(i, iend, tail);
        AppendRun(j, jend, tail);
      } else {
        AppendRun(run_begin_[r], run_begin_[r + 1], tail);  // odd run out
      }
    }
    cols_.swap(merge_cols_);
    vals_.swap(merge_vals_);
    run_begin_ = std::move(next_begin);
  }
  finalized_ = true;
}

std::int64_t RowMergeAccumulator::size() {
  Finalize();
  return static_cast<std::int64_t>(cols_.size());
}

std::int64_t RowMergeAccumulator::ExtractSorted(index_t* cols_out,
                                                value_t* vals_out) {
  Finalize();
  std::int64_t n = 0;
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    cols_out[n] = cols_[i];
    if (vals_out) vals_out[n] = vals_[i];
    ++n;
  }
  return n;
}

void RowMergeAccumulator::Clear() {
  cols_.clear();
  vals_.clear();
  run_begin_.clear();
  finalized_ = false;
}

}  // namespace oocgemm::kernels
