// Registry of pluggable SpGEMM accumulator strategies and the per-row
// cost-model router (the Liu–Vinter idea: bin rows by upper-bound work,
// pick an accumulator per bin; PAPERS.md).
//
// Each accumulator class carries a static `kTraits` block — modeled cost
// coefficients plus its preferred density/flop operating range.  The
// registry exposes those traits uniformly so the routing pass
// (`RouteRows` in binning.hpp), the serve `--kernel` flag parser and the
// mis-route metric all read one source of truth:
//
//   cost(row) = setup + per_product * P + log_factor * P * log2(max(P, 2))
//             + width_cost * panel_cols,           P = flops / 2
//
//   eligible(row) <=> density in [min_density, max_density]
//                  and flops in [min_flops, max_flops]
//                  and the strategy is feasible at the panel width
//                  (dense scratch arrays cap at kMaxFeasibleCols).
//
// Density is exact nnz/b_cols when the symbolic phase already ran, else the
// estimator's occupancy model D = W*(1 - e^(-P/W)) with W = panel width
// (estimate::OccupancyDistinct) — the PR 7 signal that makes routing
// possible before any symbolic work.  Hash is always eligible, so RouteRow
// totally covers the row space: every row gets exactly one strategy.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "kernels/accumulators.hpp"

namespace oocgemm::kernels {

/// Multiplicative scales the cost-model calibrator applies to the routing
/// polynomial: compute_scale multiplies the flop-proportional terms
/// (per_product and log_factor), overhead_scale the fixed terms (setup and
/// width cost).  The identity {1.0, 1.0} reproduces the static cost
/// bit-for-bit (multiplying an IEEE double by 1.0 is exact), which the
/// differential harness relies on.
struct RouteCalibration {
  double compute_scale = 1.0;
  double overhead_scale = 1.0;
};

inline constexpr int kNumStrategies = 4;

/// The concrete (non-kAuto) strategies, in registry order.
inline constexpr std::array<AccumulatorKind, kNumStrategies> kAllStrategies = {
    AccumulatorKind::kHash,
    AccumulatorKind::kDense,
    AccumulatorKind::kSortMerge,
    AccumulatorKind::kRowMerge,
};

class KernelRegistry {
 public:
  /// All registered concrete strategies, registry order.
  static const std::array<AccumulatorKind, kNumStrategies>& Strategies() {
    return kAllStrategies;
  }

  /// Traits of a concrete strategy (kAuto is not a strategy; OOC_CHECKs).
  static const AccumulatorTraits& TraitsFor(AccumulatorKind kind);

  /// False when the strategy cannot run at this panel width (today: dense
  /// scratch beyond DenseAccumulator::kMaxFeasibleCols columns).
  static bool StrategyFeasible(AccumulatorKind kind, index_t b_cols);

  /// Modeled cost of running one row through `kind`.  `est_nnz` is the
  /// expected distinct output count (exact when the symbolic phase ran,
  /// occupancy-model otherwise); it only gates eligibility via density —
  /// the cost polynomial itself is a function of flops and width.
  static double ModeledRowCost(AccumulatorKind kind, std::int64_t row_flops,
                               double est_nnz, index_t b_cols,
                               const RouteCalibration& calibration = {});

  /// Picks the cheapest eligible-and-feasible strategy for a row.  Pass
  /// `exact_nnz >= 0` after the symbolic phase to route on real density;
  /// with the default -1 the density comes from the occupancy model.  The
  /// calibration scales (default identity = the static model) shift the
  /// compute/overhead balance the router optimizes.
  static AccumulatorKind RouteRow(std::int64_t row_flops, index_t b_cols,
                                  std::int64_t exact_nnz = -1,
                                  const RouteCalibration& calibration = {});
};

/// "hash" / "dense" / "sort" / "merge" / "auto".
const char* AccumulatorKindName(AccumulatorKind kind);

/// Inverse of AccumulatorKindName; std::nullopt on unknown spelling.
std::optional<AccumulatorKind> ParseAccumulatorKind(const std::string& name);

}  // namespace oocgemm::kernels
