// Calibrated timing model for the virtual GPU kernels and the multicore CPU
// baseline.
//
// The model is deliberately simple: effective SpGEMM throughput grows with
// the compression ratio cr = flops / nnz(C) (more accumulation per output
// element means better cache/register behaviour on both devices — the
// correlation the paper observes in Section V-C).  The constants are
// calibrated so the *synchronous* out-of-core baseline lands in the paper's
// Fig. 4 transfer-fraction band; every other evaluation result then emerges
// from the simulated schedule (see DESIGN.md).
#pragma once

#include <cstdint>

namespace oocgemm::kernels {

struct CostModel {
  // --- GPU kernel stages ----------------------------------------------------
  /// Row analysis scans A-panel entries and reads B row lengths.
  double analysis_entry_rate = 25e9;       // A-panel entries per second

  /// Effective numeric throughput: numeric_coeff * cr^numeric_exp flops/s,
  /// clamped to [numeric_min, numeric_max].
  double numeric_coeff = 2.0e9;
  double numeric_exp = 0.9;
  double numeric_min = 0.8e9;
  double numeric_max = 30e9;

  /// Symbolic execution costs this fraction of the numeric time (it does
  /// the same traversal without value arithmetic or output writes).
  double symbolic_fraction = 0.5;

  /// Load-imbalance multiplier per row-group kernel (the last warp of a
  /// group finishes late).  Multiplicative so it scales with the problem;
  /// the fixed per-launch cost lives in DeviceProperties (and shrinks with
  /// the miniature-device scaling).
  double group_imbalance_factor = 1.08;

  // --- CPU (28-thread Nagasaka-style hash SpGEMM) ---------------------------
  /// Like the GPU, the CPU kernel benefits from accumulation locality, so
  /// its effective rate also grows with the compression ratio — but more
  /// gently (exponent 0.65 vs the GPU's ~0.9 end-to-end), because it pays
  /// no PCIe transfer.  Two consequences the paper reports emerge from this
  /// gap: the matrix-level GPU/CPU speedup stays in a narrow ~1.8-3x band
  /// across the whole evaluation set (Fig. 7), and dense chunks are
  /// *relatively* better on the GPU, which is why reordering them onto the
  /// GPU pays off (Fig. 9).
  double cpu_seconds_per_flop_coeff = 7.9e-9;  // per-flop cost at cr = 1
  double cpu_flop_exponent = 0.65;
  /// Per-chunk setup on the CPU side (thread fork/join, scratch reuse).
  /// Like the scaled device's fixed costs, expressed at reproduction scale
  /// (~1/512 of a full-size run's ~120us).
  double cpu_chunk_overhead = 0.25e-6;

  // --- derived quantities -----------------------------------------------------
  double NumericRate(double cr) const;
  double GpuAnalysisSeconds(std::int64_t a_panel_nnz) const;
  double GpuSymbolicSeconds(std::int64_t flops, double cr) const;
  double GpuNumericSeconds(std::int64_t flops, double cr) const;

  /// Modeled end-to-end GPU cost of a chunk (kernels + D2H of the result at
  /// `d2h_bandwidth` bytes/s), used to derive the CPU rate and by the
  /// hybrid scheduler's intuition; the *actual* GPU time comes from the
  /// simulated timeline, not from this estimate.
  double GpuEndToEndSeconds(std::int64_t flops, double cr,
                            double d2h_bandwidth) const;

  /// Modeled CPU time for a chunk of `flops` with compression ratio `cr`
  /// (output nnz = flops / cr).
  double CpuChunkSeconds(std::int64_t flops, double cr) const;
};

}  // namespace oocgemm::kernels
