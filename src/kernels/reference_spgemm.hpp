// Slow, obviously-correct SpGEMM used as the oracle in tests and to compute
// exact output statistics.  Sort-based per-row accumulation, no shared
// machinery with the production kernels (independence keeps the oracle
// honest).
#pragma once

#include "sparse/csr.hpp"

namespace oocgemm::kernels {

/// C = A * B.  Aborts on dimension mismatch (oracle use only).
sparse::Csr ReferenceSpgemm(const sparse::Csr& a, const sparse::Csr& b);

}  // namespace oocgemm::kernels
