#include "kernels/kernel_registry.hpp"

#include <cmath>
#include <limits>

#include "common/status.hpp"
#include "estimate/estimator.hpp"

namespace oocgemm::kernels {

const AccumulatorTraits& KernelRegistry::TraitsFor(AccumulatorKind kind) {
  switch (kind) {
    case AccumulatorKind::kHash:
      return HashAccumulator::kTraits;
    case AccumulatorKind::kDense:
      return DenseAccumulator::kTraits;
    case AccumulatorKind::kSortMerge:
      return SortMergeAccumulator::kTraits;
    case AccumulatorKind::kRowMerge:
      return RowMergeAccumulator::kTraits;
    case AccumulatorKind::kAuto:
      break;
  }
  OOC_CHECK(false && "kAuto has no traits");
  return HashAccumulator::kTraits;  // unreachable
}

bool KernelRegistry::StrategyFeasible(AccumulatorKind kind, index_t b_cols) {
  if (kind == AccumulatorKind::kDense) {
    return b_cols <= DenseAccumulator::kMaxFeasibleCols;
  }
  return true;
}

double KernelRegistry::ModeledRowCost(AccumulatorKind kind,
                                      std::int64_t row_flops, double est_nnz,
                                      index_t b_cols,
                                      const RouteCalibration& calibration) {
  const AccumulatorTraits& t = TraitsFor(kind);
  const double products = static_cast<double>(row_flops) / 2.0;
  const double width = static_cast<double>(b_cols);
  const double density = width > 0.0 ? est_nnz / width : 0.0;
  if (!StrategyFeasible(kind, b_cols) || density < t.min_density ||
      density > t.max_density || row_flops < t.min_flops ||
      row_flops > t.max_flops) {
    return std::numeric_limits<double>::infinity();
  }
  return calibration.overhead_scale * (t.setup_cost + t.width_cost * width) +
         calibration.compute_scale *
             (t.per_product_cost * products +
              t.log_factor * products * std::log2(std::max(products, 2.0)));
}

AccumulatorKind KernelRegistry::RouteRow(std::int64_t row_flops, index_t b_cols,
                                         std::int64_t exact_nnz,
                                         const RouteCalibration& calibration) {
  const double est_nnz =
      exact_nnz >= 0
          ? static_cast<double>(exact_nnz)
          : estimate::OccupancyDistinct(static_cast<double>(b_cols),
                                        static_cast<double>(row_flops) / 2.0);
  AccumulatorKind best = AccumulatorKind::kHash;  // always eligible fallback
  double best_cost = ModeledRowCost(best, row_flops, est_nnz, b_cols, calibration);
  for (AccumulatorKind kind : kAllStrategies) {
    if (kind == AccumulatorKind::kHash) continue;
    const double cost = ModeledRowCost(kind, row_flops, est_nnz, b_cols, calibration);
    if (cost < best_cost) {
      best = kind;
      best_cost = cost;
    }
  }
  return best;
}

const char* AccumulatorKindName(AccumulatorKind kind) {
  switch (kind) {
    case AccumulatorKind::kAuto:
      return "auto";
    case AccumulatorKind::kHash:
      return "hash";
    case AccumulatorKind::kDense:
      return "dense";
    case AccumulatorKind::kSortMerge:
      return "sort";
    case AccumulatorKind::kRowMerge:
      return "merge";
  }
  return "unknown";
}

std::optional<AccumulatorKind> ParseAccumulatorKind(const std::string& name) {
  if (name == "auto") return AccumulatorKind::kAuto;
  if (name == "hash") return AccumulatorKind::kHash;
  if (name == "dense") return AccumulatorKind::kDense;
  if (name == "sort") return AccumulatorKind::kSortMerge;
  if (name == "merge") return AccumulatorKind::kRowMerge;
  return std::nullopt;
}

}  // namespace oocgemm::kernels
