// Device-resident CSR panels and their upload path.
//
// Panels of A and B live in device memory as the usual three CSR arrays
// (Section III-A of the paper: "we store data using CSR format on device
// memory because it is the most commonly used data format").
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memory_source.hpp"

namespace oocgemm::kernels {

struct DeviceCsr {
  sparse::index_t rows = 0;
  sparse::index_t cols = 0;
  std::int64_t nnz = 0;
  vgpu::DevicePtr row_offsets;  // (rows + 1) offset_t
  vgpu::DevicePtr col_ids;      // nnz index_t
  vgpu::DevicePtr values;       // nnz value_t

  std::int64_t StorageBytes() const {
    return row_offsets.size + col_ids.size + values.size;
  }
};

/// Required device bytes for uploading `m` (allocator-aligned upper bound).
std::int64_t DeviceCsrBytes(const sparse::Csr& m);
std::int64_t DeviceCsrBytes(sparse::index_t rows, std::int64_t nnz);

/// Allocates from `source` and copies the three arrays on `stream`.
/// The host-side `m` must stay alive until the stream drains (the copies
/// are eager in data but asynchronous in virtual time).
StatusOr<DeviceCsr> UploadCsr(vgpu::Device& device, vgpu::HostContext& host,
                              vgpu::Stream& stream,
                              vgpu::DeviceMemorySource& source,
                              const sparse::Csr& m, const std::string& label,
                              bool pinned = true);

/// Frees the panel through `source` (no-op for pools).
void ReleaseCsr(vgpu::HostContext& host, vgpu::DeviceMemorySource& source,
                DeviceCsr& m);

/// Downloads a device CSR back into a host matrix (synchronous; used by
/// tests and the in-core convenience path, not the pipelined executors).
sparse::Csr DownloadCsr(vgpu::Device& device, vgpu::HostContext& host,
                        const DeviceCsr& m);

}  // namespace oocgemm::kernels
