#include "kernels/reference_spgemm.hpp"

#include <algorithm>
#include <vector>

#include "common/status.hpp"

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

Csr ReferenceSpgemm(const Csr& a, const Csr& b) {
  OOC_CHECK(a.cols() == b.rows());
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> out_cols;
  std::vector<value_t> out_vals;
  std::vector<std::pair<index_t, value_t>> products;

  for (index_t r = 0; r < a.rows(); ++r) {
    products.clear();
    for (offset_t ka = a.row_begin(r); ka < a.row_end(r); ++ka) {
      const index_t mid = a.col_ids()[static_cast<std::size_t>(ka)];
      const value_t av = a.values()[static_cast<std::size_t>(ka)];
      for (offset_t kb = b.row_begin(mid); kb < b.row_end(mid); ++kb) {
        products.emplace_back(b.col_ids()[static_cast<std::size_t>(kb)],
                              av * b.values()[static_cast<std::size_t>(kb)]);
      }
    }
    std::sort(products.begin(), products.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    std::size_t i = 0;
    while (i < products.size()) {
      const index_t col = products[i].first;
      value_t sum = 0.0;
      while (i < products.size() && products[i].first == col) {
        sum += products[i].second;
        ++i;
      }
      out_cols.push_back(col);
      out_vals.push_back(sum);
    }
    offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(out_cols.size());
  }
  return Csr(a.rows(), b.cols(), std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace oocgemm::kernels
