// Masked SpGEMM: C = (A * B) .* pattern(M).
//
// The GraphBLAS-style primitive behind the paper's graph-algorithm
// motivation (Sec. I cites [22], the GraphBLAS foundations): when only the
// entries of C at the mask's positions are needed — triangle counting,
// clustering-coefficient and path-filter kernels — accumulating the full
// product and discarding most of it wastes exactly the output volume the
// out-of-core machinery exists to move.  Masking skips those entries at
// accumulation time instead.
#pragma once

#include <cstdint>

#include "common/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::kernels {

/// C[i][j] = (A*B)[i][j] where M has a stored entry at (i, j); all other
/// positions are dropped.  M's values are ignored (structural mask).
/// Masked positions whose accumulated sum is exactly zero are dropped too
/// (they are indistinguishable from never-touched positions).
sparse::Csr MaskedCpuSpgemm(const sparse::Csr& a, const sparse::Csr& b,
                            const sparse::Csr& mask, ThreadPool& pool);

/// Triangle count of an undirected simple graph given its (symmetric,
/// zero-diagonal) adjacency pattern: sum((A*A) .* A) / 6.
std::int64_t CountTriangles(const sparse::Csr& adjacency, ThreadPool& pool);

}  // namespace oocgemm::kernels
