// The symbolic and numeric phases of the two-phase SpGEMM (Section II-B).
//
// Both phases walk Gustavson row-row products of a row panel of A against a
// column panel of B (stored in CSR with panel-local column ids) and
// accumulate per output row through one of the registry's four accumulator
// strategies (hash / dense / sort-merge / row-merge).  Callers pass the
// strategy per call — the routing pass (binning.hpp's RouteRows) groups
// rows by work class and picks a strategy per group, so a kernel launch
// processes one group with one strategy.  kAuto falls back to per-row
// registry routing for callers that skip the grouping step.
//
// These functions are the *bodies* of virtual-GPU kernels: they run on the
// host, but only ever through Device::LaunchKernel so their time is
// attributed to the simulated compute engine.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/accumulators.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::kernels {

/// Scratch accumulators reused across rows/kernels (no allocation inside
/// the pipeline — the paper's requirement for asynchronous execution).
struct AccumulatorScratch {
  HashAccumulator hash;
  DenseAccumulator dense;
  SortMergeAccumulator sort;
  RowMergeAccumulator merge;
};

/// Symbolic phase over a set of rows: writes the number of distinct output
/// columns of each listed row to row_nnz_out (indexed like `rows`).
///
/// `a_row_offsets/a_col_ids` describe the row panel of A (panel-local rows,
/// global column ids into B's row space); `b` is the column panel of B
/// (b.cols() == panel width, panel-local column ids).
void SymbolicRows(const sparse::offset_t* a_row_offsets,
                  const sparse::index_t* a_col_ids,
                  const sparse::offset_t* b_row_offsets,
                  const sparse::index_t* b_col_ids, sparse::index_t b_cols,
                  const std::vector<sparse::index_t>& rows,
                  const std::int64_t* row_flops, AccumulatorKind kind,
                  AccumulatorScratch& scratch, std::int64_t* row_nnz_out);

/// Numeric phase over a set of rows: fills col/val arrays of output rows at
/// positions given by c_row_offsets (panel-local CSR of the chunk).
void NumericRows(const sparse::offset_t* a_row_offsets,
                 const sparse::index_t* a_col_ids, const sparse::value_t* a_values,
                 const sparse::offset_t* b_row_offsets,
                 const sparse::index_t* b_col_ids, const sparse::value_t* b_values,
                 sparse::index_t b_cols, const std::vector<sparse::index_t>& rows,
                 const std::int64_t* row_flops, AccumulatorKind kind,
                 AccumulatorScratch& scratch, const sparse::offset_t* c_row_offsets,
                 sparse::index_t* c_col_ids, sparse::value_t* c_values);

}  // namespace oocgemm::kernels
