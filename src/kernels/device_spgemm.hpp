// The in-core GPU SpGEMM pipeline (Section III-B / Fig. 3 of the paper),
// issued as virtual-GPU kernels and transfers on a caller-supplied stream:
//
//   1. Analysis: row-analysis kernel -> D2H of per-row flops -> host
//      row grouping.
//   2. Symbolic: one kernel per row group -> D2H of per-row nnz -> host
//      prefix sum -> output allocation -> H2D of the row offsets.
//   3. Numeric: host regrouping by output nnz -> one kernel per group.
//
// The three stages are exposed individually (ChunkPipeline) because the
// asynchronous executor interleaves the *previous* chunk's output transfers
// between them (Section IV-B, Fig. 6).  The result chunk's col_ids/values
// stay in device memory: the executors own the payload D2H so they can
// split and schedule it.
//
// All scratch comes from a DeviceMemorySource: a pool (the paper's design,
// no device serialization) or raw Mallocs (the spECK-baseline behaviour).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kernels/accumulators.hpp"
#include "kernels/binning.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/device_csr.hpp"
#include "kernels/spgemm_phases.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memory_source.hpp"

namespace oocgemm::kernels {

struct DeviceSpgemmOptions {
  AccumulatorKind accumulator = AccumulatorKind::kAuto;
  CostModel cost_model;
  /// Calibrated routing scales (identity = static cost model).
  RouteCalibration routing;
};

/// Output of one chunk multiplication, still resident on the device.
struct ChunkProduct {
  sparse::index_t rows = 0;
  sparse::index_t cols = 0;
  std::int64_t nnz = 0;
  std::int64_t flops = 0;
  double compression_ratio = 1.0;

  /// Host copy of the (panel-local) row offsets, produced by the symbolic
  /// phase; rows + 1 entries.
  std::vector<sparse::offset_t> row_offsets;

  /// Device-resident payload.
  vgpu::DevicePtr d_row_offsets;
  vgpu::DevicePtr d_col_ids;
  vgpu::DevicePtr d_values;

  /// Pipeline scratch (per-row flops/nnz) kept so the caller can release
  /// everything through the same memory source.
  vgpu::DevicePtr d_scratch_row_flops;
  vgpu::DevicePtr d_scratch_row_nnz;

  std::int64_t payload_bytes() const {
    return nnz * static_cast<std::int64_t>(sizeof(sparse::index_t)) +
           nnz * static_cast<std::int64_t>(sizeof(sparse::value_t));
  }
};

/// One chunk's staged execution.  Stages must run in order:
/// RunAnalysis -> RunSymbolic -> RunNumeric.  Between stages the caller may
/// issue unrelated work (other streams' transfers).
class ChunkPipeline {
 public:
  /// `scratch` is the reusable accumulator state shared across chunks (the
  /// no-allocation-in-the-pipeline requirement).
  ChunkPipeline(vgpu::Device& device, const DeviceSpgemmOptions& options,
                AccumulatorScratch& scratch);

  /// Stage 1.  Synchronizes the host on the info transfer (row grouping
  /// happens host-side, as in Fig. 3).
  Status RunAnalysis(vgpu::HostContext& host, vgpu::Stream& stream,
                     const DeviceCsr& a_panel, const DeviceCsr& b_panel,
                     vgpu::DeviceMemorySource& source, const std::string& tag);

  /// Stage 2.  Synchronizes the host on the nnz transfer, then performs the
  /// output allocation (serializing under a dynamic memory source).
  Status RunSymbolic(vgpu::HostContext& host, vgpu::Stream& stream);

  /// Stage 3.
  void RunNumeric(vgpu::HostContext& host, vgpu::Stream& stream);

  const ChunkProduct& product() const { return product_; }
  ChunkProduct TakeProduct() { return std::move(product_); }

 private:
  vgpu::Device& device_;
  const DeviceSpgemmOptions& options_;
  AccumulatorScratch& scratch_;

  // Stage state.
  const DeviceCsr* a_panel_ = nullptr;
  const DeviceCsr* b_panel_ = nullptr;
  vgpu::DeviceMemorySource* source_ = nullptr;
  std::string tag_;
  std::vector<std::int64_t> h_flops_;
  std::vector<std::int64_t> h_row_nnz_;
  RoutedGroups routed_;
  ChunkProduct product_;
  int stage_ = 0;
};

class DeviceSpgemm {
 public:
  explicit DeviceSpgemm(vgpu::Device& device, DeviceSpgemmOptions options = {});

  /// Runs all three stages back to back on `stream` and returns the
  /// device-resident chunk.  OOM from `source` propagates for re-planning.
  StatusOr<ChunkProduct> Multiply(vgpu::HostContext& host, vgpu::Stream& stream,
                                  const DeviceCsr& a_panel,
                                  const DeviceCsr& b_panel,
                                  vgpu::DeviceMemorySource& source,
                                  const std::string& tag);

  const DeviceSpgemmOptions& options() const { return options_; }
  AccumulatorScratch& scratch() { return scratch_; }

 private:
  vgpu::Device& device_;
  DeviceSpgemmOptions options_;
  AccumulatorScratch scratch_;
};

/// Releases every device buffer of `chunk` through `source` (no-op for
/// pool sources, which recycle wholesale).
void ReleaseChunk(vgpu::HostContext& host, vgpu::DeviceMemorySource& source,
                  ChunkProduct& chunk);

/// Convenience for tests and small problems: uploads `a` and `b` whole,
/// multiplies in-core, downloads the product, frees everything.
StatusOr<sparse::Csr> MultiplyInCore(vgpu::Device& device, const sparse::Csr& a,
                                     const sparse::Csr& b,
                                     DeviceSpgemmOptions options = {});

}  // namespace oocgemm::kernels
