#include "kernels/masked_spgemm.hpp"

#include <vector>

#include "common/prefix_sum.hpp"
#include "kernels/accumulators.hpp"

namespace oocgemm::kernels {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

Csr MaskedCpuSpgemm(const Csr& a, const Csr& b, const Csr& mask,
                    ThreadPool& pool) {
  OOC_CHECK(a.cols() == b.rows());
  OOC_CHECK(mask.rows() == a.rows() && mask.cols() == b.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());

  // The output pattern is a subset of the mask's: row offsets can be sized
  // from exact per-row counts in one masked-accumulation pass, then filled
  // in a second (the usual two-phase scheme restricted to mask entries).
  //
  // Per worker scratch: a stamp array marking the mask row's columns, and
  // accumulated values for them.
  struct Scratch {
    std::vector<std::uint32_t> stamp;
    std::vector<value_t> accum;
    std::uint32_t generation = 0;
  };
  std::vector<Scratch> scratch(pool.num_threads());
  for (auto& s : scratch) {
    s.stamp.assign(static_cast<std::size_t>(b.cols()), 0);
    s.accum.assign(static_cast<std::size_t>(b.cols()), 0.0);
  }

  std::vector<std::int64_t> row_nnz(n, 0);
  std::vector<offset_t> row_offsets(n + 1, 0);
  std::vector<index_t> out_cols;
  std::vector<value_t> out_vals;

  auto process_rows = [&](bool numeric, std::size_t lo, std::size_t hi,
                          std::size_t w) {
    Scratch& s = scratch[w];
    for (std::size_t i = lo; i < hi; ++i) {
      const index_t r = static_cast<index_t>(i);
      if (mask.row_nnz(r) == 0) {
        row_nnz[i] = 0;
        continue;
      }
      ++s.generation;
      // Mark the mask's columns for this row.
      for (offset_t k = mask.row_begin(r); k < mask.row_end(r); ++k) {
        const index_t c = mask.col_ids()[static_cast<std::size_t>(k)];
        s.stamp[static_cast<std::size_t>(c)] = s.generation;
        s.accum[static_cast<std::size_t>(c)] = 0.0;
      }
      // Accumulate only masked positions.
      for (offset_t ka = a.row_begin(r); ka < a.row_end(r); ++ka) {
        const index_t mid = a.col_ids()[static_cast<std::size_t>(ka)];
        const value_t av = a.values()[static_cast<std::size_t>(ka)];
        for (offset_t kb = b.row_begin(mid); kb < b.row_end(mid); ++kb) {
          const index_t c = b.col_ids()[static_cast<std::size_t>(kb)];
          if (s.stamp[static_cast<std::size_t>(c)] == s.generation) {
            s.accum[static_cast<std::size_t>(c)] +=
                av * b.values()[static_cast<std::size_t>(kb)];
          }
        }
      }
      // Walk the mask row (sorted) and emit/count the positions that
      // received a non-zero sum.
      std::int64_t count = 0;
      for (offset_t k = mask.row_begin(r); k < mask.row_end(r); ++k) {
        const index_t c = mask.col_ids()[static_cast<std::size_t>(k)];
        if (s.accum[static_cast<std::size_t>(c)] != 0.0) {
          if (numeric) {
            const offset_t pos = row_offsets[i] + count;
            out_cols[static_cast<std::size_t>(pos)] = c;
            out_vals[static_cast<std::size_t>(pos)] =
                s.accum[static_cast<std::size_t>(c)];
          }
          ++count;
        }
      }
      if (!numeric) row_nnz[i] = count;
    }
  };

  pool.ParallelFor(0, n,
                   [&](std::size_t lo, std::size_t hi, std::size_t w) {
                     process_rows(false, lo, hi, w);
                   },
                   64);
  const std::int64_t total = ExclusiveScan(row_nnz.data(), n, row_offsets.data());
  out_cols.resize(static_cast<std::size_t>(total));
  out_vals.resize(static_cast<std::size_t>(total));
  pool.ParallelFor(0, n,
                   [&](std::size_t lo, std::size_t hi, std::size_t w) {
                     process_rows(true, lo, hi, w);
                   },
                   64);
  return Csr(a.rows(), b.cols(), std::move(row_offsets), std::move(out_cols),
             std::move(out_vals));
}

std::int64_t CountTriangles(const Csr& adjacency, ThreadPool& pool) {
  OOC_CHECK(adjacency.rows() == adjacency.cols());
  // Structural count: use unit weights regardless of stored values.
  Csr pattern = adjacency;
  for (auto& v : pattern.mutable_values()) v = 1.0;
  Csr wedges = MaskedCpuSpgemm(pattern, pattern, pattern, pool);
  double total = 0.0;
  for (value_t v : wedges.values()) total += v;
  // Each triangle contributes one wedge at each of its 6 ordered entries.
  return static_cast<std::int64_t>(total + 0.5) / 6;
}

}  // namespace oocgemm::kernels
