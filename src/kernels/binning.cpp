#include "kernels/binning.hpp"

#include <cmath>
#include <cstdio>

#include "kernels/kernel_registry.hpp"
#include "obs/kernel_metrics.hpp"

namespace oocgemm::kernels {

RowGroups GroupRowsByWork(const std::int64_t* row_flops, std::size_t n) {
  RowGroups rg;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t f = row_flops[i];
    int g = 0;
    while (g + 1 < kNumRowGroups && f > kGroupLimits[static_cast<std::size_t>(g)]) {
      ++g;
    }
    // The loop exits with g such that f <= kGroupLimits[g] (or g == last).
    rg.groups[static_cast<std::size_t>(g)].push_back(
        static_cast<sparse::index_t>(i));
  }
  return rg;
}

std::string RowGroups::DebugString() const {
  std::string out = "RowGroups(";
  for (int g = 0; g < kNumRowGroups; ++g) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%zu", g ? ", " : "",
                  groups[static_cast<std::size_t>(g)].size());
    out += buf;
  }
  out += ")";
  return out;
}

std::string RoutedGroups::DebugString() const {
  std::string out = "RoutedGroups(";
  for (int g = 0; g < kNumRowGroups; ++g) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%zu:%s", g ? ", " : "",
                  groups.groups[static_cast<std::size_t>(g)].size(),
                  AccumulatorKindName(strategy[static_cast<std::size_t>(g)]));
    out += buf;
  }
  out += ")";
  return out;
}

RoutedGroups RouteRows(const std::int64_t* group_key,
                       const std::int64_t* row_flops,
                       const std::int64_t* row_nnz, std::size_t n,
                       sparse::index_t b_cols, AccumulatorKind forced,
                       const RouteCalibration& calibration) {
  RoutedGroups routed;
  routed.groups = GroupRowsByWork(group_key, n);
  for (int g = 0; g < kNumRowGroups; ++g) {
    const auto& rows = routed.groups.groups[static_cast<std::size_t>(g)];
    AccumulatorKind kind;
    if (forced != AccumulatorKind::kAuto) {
      kind = KernelRegistry::StrategyFeasible(forced, b_cols)
                 ? forced
                 : AccumulatorKind::kHash;
    } else if (rows.empty()) {
      kind = AccumulatorKind::kHash;
    } else {
      // Route the class from its mean row: the groups are narrow (factor-16
      // flop bands) so the mean is representative, and one registry query
      // per class keeps the routing pass O(groups) after binning.
      std::int64_t flops_sum = 0, nnz_sum = 0;
      for (sparse::index_t r : rows) {
        flops_sum += row_flops[r];
        if (row_nnz) nnz_sum += row_nnz[r];
      }
      const auto count = static_cast<std::int64_t>(rows.size());
      const std::int64_t mean_flops = flops_sum / count;
      const std::int64_t mean_nnz = row_nnz ? nnz_sum / count : -1;
      kind = KernelRegistry::RouteRow(mean_flops, b_cols, mean_nnz, calibration);
    }
    routed.strategy[static_cast<std::size_t>(g)] = kind;
  }
  return routed;
}

void RecordRoutedRows(const RoutedGroups& routed) {
  for (int g = 0; g < kNumRowGroups; ++g) {
    const auto& rows = routed.groups.groups[static_cast<std::size_t>(g)];
    if (rows.empty()) continue;
    const AccumulatorKind kind = routed.strategy[static_cast<std::size_t>(g)];
    obs::KernelMetricsFor(AccumulatorKindName(kind))
        .rows_total->Add(static_cast<std::int64_t>(rows.size()));
  }
}

void RecordRoutingQuality(const RoutedGroups& routed,
                          const std::int64_t* row_flops,
                          const std::int64_t* row_nnz,
                          sparse::index_t b_cols) {
  obs::LogBucketHistogram& ratio_hist = obs::KernelMisrouteCostRatio();
  for (int g = 0; g < kNumRowGroups; ++g) {
    const auto& rows = routed.groups.groups[static_cast<std::size_t>(g)];
    if (rows.empty()) continue;
    const AccumulatorKind chosen = routed.strategy[static_cast<std::size_t>(g)];
    std::int64_t misroutes = 0;
    for (sparse::index_t r : rows) {
      const AccumulatorKind best =
          KernelRegistry::RouteRow(row_flops[r], b_cols, row_nnz[r]);
      if (best == chosen) continue;
      ++misroutes;
      const double nnz = static_cast<double>(row_nnz[r]);
      const double chosen_cost =
          KernelRegistry::ModeledRowCost(chosen, row_flops[r], nnz, b_cols);
      const double best_cost =
          KernelRegistry::ModeledRowCost(best, row_flops[r], nnz, b_cols);
      // The routed strategy may be post-hoc *ineligible* (infinite modeled
      // cost) — clamp to the worst finite ratio bucket instead of feeding
      // inf into the histogram.
      const double ratio = (best_cost > 0.0 && std::isfinite(chosen_cost))
                               ? chosen_cost / best_cost
                               : 1e18;
      ratio_hist.Record(ratio);
    }
    if (misroutes > 0) {
      obs::KernelMetricsFor(AccumulatorKindName(chosen))
          .misroutes->Add(misroutes);
    }
  }
}

}  // namespace oocgemm::kernels
