#include "kernels/binning.hpp"

#include <cstdio>

namespace oocgemm::kernels {

RowGroups GroupRowsByWork(const std::int64_t* row_flops, std::size_t n) {
  RowGroups rg;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t f = row_flops[i];
    int g = 0;
    while (g + 1 < kNumRowGroups && f > kGroupLimits[static_cast<std::size_t>(g)]) {
      ++g;
    }
    // The loop exits with g such that f <= kGroupLimits[g] (or g == last).
    rg.groups[static_cast<std::size_t>(g)].push_back(
        static_cast<sparse::index_t>(i));
  }
  return rg;
}

std::string RowGroups::DebugString() const {
  std::string out = "RowGroups(";
  for (int g = 0; g < kNumRowGroups; ++g) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%zu", g ? ", " : "",
                  groups[static_cast<std::size_t>(g)].size());
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace oocgemm::kernels
