// Stage 1 of the in-core pipeline: per-row work analysis (Fig. 3 of the
// paper).  For C = A * B, the work of output row i is
//   flops(i) = 2 * sum_{k in A_i*} nnz(B_k*)
// This drives (a) row grouping for load balance, (b) accumulator selection,
// (c) the flop-based chunk scheduling of the out-of-core framework.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace oocgemm::kernels {

/// Per-row flops of rows [row_begin, row_end) of A against B.
/// b_row_nnz[k] must hold nnz of B's row k (precomputed once per panel).
void AnalyzeRows(const sparse::Csr& a, sparse::index_t row_begin,
                 sparse::index_t row_end,
                 const std::vector<std::int64_t>& b_row_nnz,
                 std::int64_t* flops_out);

/// Convenience: row nnz array of a matrix.
std::vector<std::int64_t> RowNnz(const sparse::Csr& m);

}  // namespace oocgemm::kernels
