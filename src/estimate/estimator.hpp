// OCEAN-style sampled SpGEMM output estimation (no symbolic pass).
//
// Exact admission/planning today runs `sparse::EstimateRowNnz` /
// `AnalyzeChunks`, which walk all of nnz(A) and run a real symbolic
// multiply on sampled rows — O(flops) on the sampled share.  At serve
// scale that analysis sits on the submit hot path of every job.  The OCEAN
// paper (PAPERS.md) shows structure-only sampling is enough to drive
// planning: this module estimates per-row products (flops/2), output nnz
// and compression ratio of C = A*B from
//
//   1. *Strided column draws*: for each row of A, at most
//      `max_draws_per_row` of its column ids are visited at a fixed stride
//      with a seeded random phase; each drawn id k contributes |B(k,:)|,
//      scaled by d/draws.  Cost O(min(d, draws)) per row — never O(flops).
//   2. *Row sampling + occupancy*: a seeded ~`row_sample_fraction` subset
//      of A's rows additionally gathers the drawn B rows' column ids and
//      counts distinct ids.  An effective-width occupancy model
//      D = W*(1 - exp(-P/W)) is fit to the drawn (products, distinct)
//      pair and extrapolated to the row's full product count, giving the
//      row's estimated output nnz without a symbolic pass.
//   3. *Bucket calibration*: unsampled rows reuse the mean distinct/product
//      ratio of sampled rows in the same log4(products) bucket (nearest
//      bucket fallback), mirroring `sparse::EstimateRowNnz`'s binning.
//
// The estimate carries its own reliability signal: the classical simple-
// random-sampling standard error of the distinct/products ratio across
// sampled rows.  Consumers (serve admission) fall back to the exact path
// when `reliable` is false — small matrices are cheap to analyze exactly,
// and large matrices sample enough rows to pass the check.
//
// Everything is deterministic in `seed`: identical inputs and options give
// bit-identical estimates (property-tested in test_estimate_accuracy).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace oocgemm::estimate {

struct EstimatorOptions {
  /// Fraction of A's rows that get the distinct-count (occupancy) treatment.
  double row_sample_fraction = 0.05;
  /// Below this many sampled rows the estimate reports reliable == false.
  int min_sample_rows = 32;
  /// Cap on column draws per row of A; rows at most this long are exact.
  int max_draws_per_row = 64;
  /// Reliability cutoff on the sampled ratio's relative standard error.
  double max_rel_stderr = 0.35;
  std::uint64_t seed = 1;
};

/// Structure-only estimate of C = A*B.  All quantities are estimates; the
/// only exact guarantees are determinism in the seed and row_products[i]
/// == exact products for rows with <= max_draws_per_row nonzeros.
struct ProductEstimate {
  /// Per-row of A: estimated multiply count (sum over k in A(i,:) of
  /// |B(k,:)|).  flops(i) = 2 * row_products[i].
  std::vector<double> row_products;
  /// Per-row of A: estimated nnz of C(i,:).
  std::vector<double> row_nnz;

  double total_products = 0.0;
  double total_nnz = 0.0;
  double total_flops = 0.0;        // 2 * total_products
  double compression_ratio = 0.0;  // total_flops / total_nnz (repo convention)

  /// Relative standard error of the sampled distinct/products ratio under
  /// simple random sampling (finite-population corrected).
  double rel_stderr = 0.0;
  std::int64_t sampled_rows = 0;
  /// False when too few rows were sampled or rel_stderr exceeds the cutoff;
  /// admission falls back to the exact analysis in that case.
  bool reliable = false;

  /// Wall-clock seconds spent inside EstimateProduct (feeds the
  /// oocgemm_estimate_analysis_seconds_total{mode} accounting).
  double analysis_seconds = 0.0;
};

/// Estimates the product structure of a * b.  Requires a.cols() == b.rows()
/// (unchecked here; callers validate operands before estimating).
ProductEstimate EstimateProduct(const sparse::Csr& a, const sparse::Csr& b,
                                const EstimatorOptions& opts = {});

/// Per-panel rollup of a ProductEstimate over row-panel boundaries
/// (`bounds` has num_panels + 1 entries, as produced by the partition
/// layer).  Upper fields inflate by the estimate's uncertainty
/// (1 + 2 * rel_stderr) — a ~95% confidence bound under the SRS model.
struct PanelTotals {
  std::vector<double> panel_products;
  std::vector<double> panel_nnz;
  std::vector<double> panel_nnz_upper;
};

PanelTotals AccumulatePanels(const ProductEstimate& est,
                             const std::vector<sparse::index_t>& bounds);

/// Occupancy extrapolation: expected distinct count after `products` draws
/// into an effective width `effective_width` — D = W*(1 - exp(-P/W)).  The
/// same model the estimator fits per sampled row; exported so the kernel
/// router can turn a row's product count into an expected output density
/// without a symbolic pass.
double OccupancyDistinct(double effective_width, double products);

}  // namespace oocgemm::estimate
