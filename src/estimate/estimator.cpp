#include "estimate/estimator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace oocgemm::estimate {

namespace {

// Distinct RNG streams so the draw phases and the row-sampling coin flips
// never interleave (adding a draw to one row must not re-sample another).
constexpr std::uint64_t kDrawStream = 0x0cea11e57ull;
constexpr std::uint64_t kSampleStream = 0x0cea5a3dull;

// Cap on column ids gathered per sampled row; beyond it the drawn B rows
// are themselves strided.  Bounds the per-row cost at O(cap log cap)
// regardless of B's density.
constexpr std::int64_t kMaxGatherPerRow = 4096;

// Factor-4 product buckets, like sparse::EstimateRowNnz's calibration bins.
constexpr int kNumBuckets = 40;  // 4^40 covers any int64-range product count

int ProductBucket(double products) {
  int b = 0;
  while (products > 1.0 && b < kNumBuckets - 1) {
    products *= 0.25;
    ++b;
  }
  return b;
}

// Solves distinct = w * (1 - exp(-products / w)) for the effective width w.
// The RHS is monotone increasing in w, so bisection converges; we search on
// a log scale because w spans many orders of magnitude.
double SolveEffectiveWidth(double distinct, double products) {
  // No collisions observed: the width is unbounded from this sample.
  if (distinct >= products - 0.5) return std::numeric_limits<double>::infinity();
  double lo = std::max(distinct, 1.0);          // w >= distinct always
  double hi = std::max(lo * 2.0, products * products);  // effectively "no collisions"
  for (int it = 0; it < 64; ++it) {
    const double w = std::sqrt(lo * hi);
    const double d = w * (1.0 - std::exp(-products / w));
    if (d < distinct) {
      lo = w;
    } else {
      hi = w;
    }
    if (hi / lo < 1.0 + 1e-9) break;
  }
  return std::sqrt(lo * hi);
}

}  // namespace

double OccupancyDistinct(double w, double products) {
  if (!std::isfinite(w)) return products;
  if (w <= 0.0) return 0.0;
  return w * (1.0 - std::exp(-products / w));
}

ProductEstimate EstimateProduct(const sparse::Csr& a, const sparse::Csr& b,
                                const EstimatorOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();

  ProductEstimate est;
  const sparse::index_t rows = a.rows();
  est.row_products.assign(static_cast<std::size_t>(rows), 0.0);
  est.row_nnz.assign(static_cast<std::size_t>(rows), 0.0);

  const std::int64_t max_draws =
      std::max<std::int64_t>(1, opts.max_draws_per_row);
  const double max_row_nnz = static_cast<double>(b.cols());

  Pcg32 draw_rng(opts.seed, kDrawStream);
  Pcg32 sample_rng(opts.seed, kSampleStream);

  const std::vector<sparse::index_t>& acols = a.col_ids();
  const std::vector<sparse::index_t>& bcols = b.col_ids();

  // Pass 1: products for every row; occupancy-based distinct for sampled
  // rows.  Unsampled rows get a -1 sentinel and are calibrated in pass 2.
  std::vector<double> bucket_ratio_sum(kNumBuckets, 0.0);
  std::vector<std::int64_t> bucket_rows(kNumBuckets, 0);
  double samp_products_sum = 0.0, samp_nnz_sum = 0.0;
  std::vector<std::pair<double, double>> samples;  // (products, est distinct)
  // Distinct counting by epoch marks: one shared array, bumped per sampled
  // row — O(gathered ids) per row instead of a sort, same exact count.
  std::vector<sparse::index_t> mark(static_cast<std::size_t>(b.cols()), 0);
  sparse::index_t epoch = 0;

  for (sparse::index_t i = 0; i < rows; ++i) {
    const sparse::offset_t beg = a.row_begin(i);
    const sparse::offset_t end = a.row_end(i);
    const std::int64_t d = end - beg;
    if (d == 0) continue;
    const bool sampled = sample_rng.Bernoulli(opts.row_sample_fraction);

    // Strided draws into B's row lengths.
    double products;
    sparse::offset_t stride = 1, phase = 0;
    std::int64_t draws = d;
    if (d <= max_draws) {
      products = 0.0;
      for (sparse::offset_t p = beg; p < end; ++p) {
        products += static_cast<double>(b.row_nnz(acols[static_cast<std::size_t>(p)]));
      }
    } else {
      stride = static_cast<sparse::offset_t>((d + max_draws - 1) / max_draws);
      phase = static_cast<sparse::offset_t>(
          draw_rng.Below64(static_cast<std::uint64_t>(stride)));
      double drawn = 0.0;
      draws = 0;
      for (sparse::offset_t p = beg + phase; p < end; p += stride) {
        drawn += static_cast<double>(b.row_nnz(acols[static_cast<std::size_t>(p)]));
        ++draws;
      }
      products = drawn * (static_cast<double>(d) / static_cast<double>(draws));
    }
    est.row_products[static_cast<std::size_t>(i)] = products;
    est.total_products += products;

    if (!sampled) {
      est.row_nnz[static_cast<std::size_t>(i)] = -1.0;  // calibrate in pass 2
      continue;
    }

    // Gather the drawn B rows' column ids (strided again if they are
    // collectively longer than the gather cap) and count distinct via the
    // epoch marks.
    std::int64_t drawn_total = 0;
    for (sparse::offset_t p = beg + phase; p < end; p += stride) {
      drawn_total += b.row_nnz(acols[static_cast<std::size_t>(p)]);
    }
    const std::int64_t inner =
        std::max<std::int64_t>(1, (drawn_total + kMaxGatherPerRow - 1) /
                                      kMaxGatherPerRow);
    ++epoch;
    std::int64_t gathered = 0, distinct_n = 0;
    for (sparse::offset_t p = beg + phase; p < end; p += stride) {
      const sparse::index_t k = acols[static_cast<std::size_t>(p)];
      for (sparse::offset_t q = b.row_begin(k); q < b.row_end(k);
           q += static_cast<sparse::offset_t>(inner)) {
        const auto c = static_cast<std::size_t>(bcols[static_cast<std::size_t>(q)]);
        ++gathered;
        if (mark[c] != epoch) {
          mark[c] = epoch;
          ++distinct_n;
        }
      }
    }
    double row_nnz;
    if (gathered == 0) {
      row_nnz = 0.0;
    } else {
      const double distinct = static_cast<double>(distinct_n);
      const double drawn_products = static_cast<double>(gathered);
      const double w = SolveEffectiveWidth(distinct, drawn_products);
      row_nnz = std::min({OccupancyDistinct(w, products), products, max_row_nnz});
    }
    est.row_nnz[static_cast<std::size_t>(i)] = row_nnz;
    ++est.sampled_rows;
    samples.emplace_back(products, row_nnz);
    samp_products_sum += products;
    samp_nnz_sum += row_nnz;
    if (products > 0.0) {
      const int bkt = ProductBucket(products);
      bucket_ratio_sum[static_cast<std::size_t>(bkt)] += row_nnz / products;
      bucket_rows[static_cast<std::size_t>(bkt)] += 1;
    }
  }

  // Pass 2: calibrate unsampled rows from the per-bucket sampled ratios,
  // falling back to neighbouring buckets and then the global ratio.
  const double global_ratio =
      samp_products_sum > 0.0 ? samp_nnz_sum / samp_products_sum : 1.0;
  for (sparse::index_t i = 0; i < rows; ++i) {
    double& rn = est.row_nnz[static_cast<std::size_t>(i)];
    if (rn >= 0.0) continue;
    const double products = est.row_products[static_cast<std::size_t>(i)];
    const int bkt = ProductBucket(products);
    double ratio = global_ratio;
    for (int delta : {0, 1, -1, 2, -2}) {
      const int n = bkt + delta;
      if (n < 0 || n >= kNumBuckets) continue;
      if (bucket_rows[static_cast<std::size_t>(n)] > 0) {
        ratio = bucket_ratio_sum[static_cast<std::size_t>(n)] /
                static_cast<double>(bucket_rows[static_cast<std::size_t>(n)]);
        break;
      }
    }
    rn = std::min({products * ratio, products, max_row_nnz});
  }
  for (double rn : est.row_nnz) est.total_nnz += rn;

  est.total_flops = 2.0 * est.total_products;
  est.compression_ratio =
      est.total_nnz > 0.0 ? est.total_flops / est.total_nnz : 0.0;

  // Reliability: SRS standard error of the ratio estimator
  // R = sum(distinct) / sum(products) across the sampled rows.
  est.rel_stderr = std::numeric_limits<double>::infinity();
  const std::int64_t s = est.sampled_rows;
  if (s >= 2 && samp_products_sum > 0.0 && samp_nnz_sum > 0.0) {
    const double ratio = samp_nnz_sum / samp_products_sum;
    double resid_sq = 0.0;
    for (const auto& [x, y] : samples) {
      const double e = y - ratio * x;
      resid_sq += e * e;
    }
    const double sd = static_cast<double>(s);
    const double var_e = resid_sq / (sd - 1.0);
    const double f = rows > 0 ? sd / static_cast<double>(rows) : 1.0;
    const double mean_x = samp_products_sum / sd;
    const double stderr_ratio =
        std::sqrt(std::max(0.0, (1.0 - f) * var_e / sd)) / mean_x;
    est.rel_stderr = ratio > 0.0 ? stderr_ratio / ratio
                                 : std::numeric_limits<double>::infinity();
  }
  est.reliable = s >= opts.min_sample_rows &&
                 std::isfinite(est.rel_stderr) &&
                 est.rel_stderr <= opts.max_rel_stderr;

  est.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return est;
}

PanelTotals AccumulatePanels(const ProductEstimate& est,
                             const std::vector<sparse::index_t>& bounds) {
  OOC_CHECK(!bounds.empty());
  const std::size_t np = bounds.size() - 1;
  PanelTotals t;
  t.panel_products.assign(np, 0.0);
  t.panel_nnz.assign(np, 0.0);
  t.panel_nnz_upper.assign(np, 0.0);
  const double inflate =
      1.0 + 2.0 * (std::isfinite(est.rel_stderr) ? est.rel_stderr : 1.0);
  for (std::size_t p = 0; p < np; ++p) {
    const auto lo = static_cast<std::size_t>(bounds[p]);
    const auto hi = static_cast<std::size_t>(bounds[p + 1]);
    for (std::size_t i = lo; i < hi && i < est.row_nnz.size(); ++i) {
      t.panel_products[p] += est.row_products[i];
      t.panel_nnz[p] += est.row_nnz[i];
    }
    t.panel_nnz_upper[p] = t.panel_nnz[p] * inflate;
  }
  return t;
}

}  // namespace oocgemm::estimate
