// Chunk descriptors and per-chunk work analysis (GetFlops of Algorithm 4).
//
// A chunk C[i][j] is the product of row panel i of A and column panel j of
// B.  Its flop count — cheap to compute relative to the SpGEMM itself — is
// the paper's universal workload currency: it drives the execution order of
// chunks (decreasing flops, Section IV-C), the GPU/CPU split of the hybrid
// executor, and it correlates with the chunk's transfer cost.
#pragma once

#include <cstdint>
#include <vector>

#include "partition/panels.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::partition {

struct ChunkDesc {
  int row_panel = 0;
  int col_panel = 0;
  std::int64_t flops = 0;
  /// Worst-case nnz of the chunk: per output row min(flops/2, panel width)
  /// summed.  The paper's Section IV-B observation that this bound is far
  /// too loose for allocation is reproduced by bench_ablation_async_design.
  std::int64_t upper_bound_nnz = 0;

  /// Sampled-symbolic prediction of the chunk's nnz (<= upper_bound_nnz).
  /// What the planner actually sizes pools with; a safety factor and an
  /// OOM-retry loop in the executors absorb under-prediction.
  std::int64_t estimated_nnz = 0;
};

/// Flops and size bounds/estimates for all num_row_panels x num_col_panels
/// chunks, row-major (chunk_id = row * num_col_panels + col, as in
/// Algorithm 4).  Cost: O(nnz(A) * num_col_panels).
///
/// `row_nnz_estimate` (size a.rows(), from sparse::EstimateRowNnz) predicts
/// each output row's full-width nnz; each chunk receives the row's products
/// share of it.  When null, estimated_nnz falls back to the upper bound.
std::vector<ChunkDesc> AnalyzeChunks(
    const sparse::Csr& a, const PanelBoundaries& row_bounds,
    const sparse::Csr& b, const PanelBoundaries& col_bounds,
    const std::vector<double>* row_nnz_estimate = nullptr);

/// Estimate-seeded chunk analysis: builds the same row-major ChunkDesc grid
/// as AnalyzeChunks from per-row *estimates* (estimate::EstimateProduct)
/// instead of an exact nnz(A)-walk — cost O(rows + nr * nc), never touching
/// A's column ids.  Each row panel's estimated products/nnz are spread over
/// column panels by B's per-panel nnz share (`col_panel_nnz` from
/// ColPanelNnz; `b_nnz_total` its sum).  upper_bound_nnz is the *dense*
/// bound (panel rows x panel width): a true bound, so the executors'
/// OOM-retry safety-factor doubling still terminates even when the
/// estimate is low.  Chunk flops are estimates too; executors correct the
/// run stats lazily from exact per-chunk counts as chunks execute.
std::vector<ChunkDesc> EstimateChunks(
    const PanelBoundaries& row_bounds, const PanelBoundaries& col_bounds,
    const std::vector<double>& row_nnz, const std::vector<double>& row_products,
    const std::vector<std::int64_t>& col_panel_nnz, std::int64_t b_nnz_total);

/// Indices of `chunks` sorted by decreasing flops (stable: equal-flop
/// chunks keep Algorithm 4's row-major order).
std::vector<int> OrderByFlopsDecreasing(const std::vector<ChunkDesc>& chunks);

/// Algorithm 4, lines 16-24: the number of leading chunks (in the given
/// order) whose cumulative flops first reaches `ratio` of the total.
/// Returns 0 when ratio <= 0; returns chunks.size() when the total is 0 or
/// ratio >= 1.
int CountGpuChunks(const std::vector<ChunkDesc>& chunks,
                   const std::vector<int>& order, double ratio);

}  // namespace oocgemm::partition
