#include "partition/panels.hpp"

#include <algorithm>

#include "common/prefix_sum.hpp"
#include "sparse/ops.hpp"

namespace oocgemm::partition {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

PanelBoundaries UniformBoundaries(index_t total, int num_panels) {
  OOC_CHECK(total >= 0 && num_panels >= 1);
  PanelBoundaries b;
  b.begin.resize(static_cast<std::size_t>(num_panels) + 1);
  for (int p = 0; p <= num_panels; ++p) {
    b.begin[static_cast<std::size_t>(p)] = static_cast<index_t>(
        static_cast<std::int64_t>(total) * p / num_panels);
  }
  return b;
}

PanelBoundaries WeightBalancedBoundaries(const std::vector<double>& weights,
                                         int num_panels) {
  OOC_CHECK(num_panels >= 1);
  const index_t rows = static_cast<index_t>(weights.size());
  PanelBoundaries b;
  b.begin.resize(static_cast<std::size_t>(num_panels) + 1);
  b.begin.front() = 0;
  b.begin.back() = rows;

  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return UniformBoundaries(rows, num_panels);

  // Walk rows once, cutting whenever the running weight passes the next
  // quantile — while ensuring every remaining panel can still get >= 1 row.
  double cum = 0.0;
  int panel = 1;
  for (index_t r = 0; r < rows && panel < num_panels; ++r) {
    cum += std::max(0.0, weights[static_cast<std::size_t>(r)]);
    const double target = total * static_cast<double>(panel) /
                          static_cast<double>(num_panels);
    const index_t max_begin = rows - static_cast<index_t>(num_panels - panel);
    if (cum >= target || r + 1 >= max_begin) {
      b.begin[static_cast<std::size_t>(panel)] =
          std::min<index_t>(r + 1, max_begin);
      ++panel;
    }
  }
  for (; panel < num_panels; ++panel) {
    b.begin[static_cast<std::size_t>(panel)] = rows;
  }
  // Enforce monotonicity (possible when rows < num_panels).
  for (int p = 1; p <= num_panels; ++p) {
    b.begin[static_cast<std::size_t>(p)] = std::max(
        b.begin[static_cast<std::size_t>(p)], b.begin[static_cast<std::size_t>(p - 1)]);
  }
  return b;
}

std::vector<Csr> PartitionRows(const Csr& a, const PanelBoundaries& bounds) {
  OOC_CHECK(bounds.num_panels() >= 1);
  OOC_CHECK(bounds.begin.front() == 0 && bounds.begin.back() == a.rows());
  std::vector<Csr> panels;
  panels.reserve(static_cast<std::size_t>(bounds.num_panels()));
  for (int p = 0; p < bounds.num_panels(); ++p) {
    panels.push_back(
        sparse::SliceRows(a, bounds.panel_begin(p), bounds.panel_end(p)));
  }
  return panels;
}

std::vector<Csr> PartitionColsNaive(const Csr& b, const PanelBoundaries& bounds) {
  OOC_CHECK(bounds.num_panels() >= 1);
  OOC_CHECK(bounds.begin.front() == 0 && bounds.begin.back() == b.cols());
  std::vector<Csr> panels;
  panels.reserve(static_cast<std::size_t>(bounds.num_panels()));
  for (int p = 0; p < bounds.num_panels(); ++p) {
    // Stage 1: count nnz of this panel per row (full re-scan of each row).
    const index_t start_col = bounds.panel_begin(p);
    const index_t end_col = bounds.panel_end(p);
    std::vector<std::int64_t> counts(static_cast<std::size_t>(b.rows()), 0);
    for (index_t r = 0; r < b.rows(); ++r) {
      for (offset_t k = b.row_begin(r); k < b.row_end(r); ++k) {
        const index_t c = b.col_ids()[static_cast<std::size_t>(k)];
        if (c >= start_col && c < end_col) {
          ++counts[static_cast<std::size_t>(r)];
        }
      }
    }
    // Stage 2: allocate.
    std::vector<offset_t> offsets = ExclusiveScan(counts);
    const std::int64_t panel_nnz = offsets.back();
    std::vector<index_t> cols(static_cast<std::size_t>(panel_nnz));
    std::vector<value_t> vals(static_cast<std::size_t>(panel_nnz));
    // Stage 3: fill (again a full re-scan).
    for (index_t r = 0; r < b.rows(); ++r) {
      offset_t w = offsets[static_cast<std::size_t>(r)];
      for (offset_t k = b.row_begin(r); k < b.row_end(r); ++k) {
        const index_t c = b.col_ids()[static_cast<std::size_t>(k)];
        if (c >= start_col && c < end_col) {
          cols[static_cast<std::size_t>(w)] = c - start_col;
          vals[static_cast<std::size_t>(w)] =
              b.values()[static_cast<std::size_t>(k)];
          ++w;
        }
      }
    }
    panels.emplace_back(b.rows(), end_col - start_col, std::move(offsets),
                        std::move(cols), std::move(vals));
  }
  return panels;
}

namespace {

/// Shared fill routine for the optimized partitioners: processes rows
/// [row_lo, row_hi) of `b` into the pre-allocated panel arrays, using
/// per-row cursors that advance monotonically across panels (the paper's
/// col_offset structure).  `offsets[p]` are the destination row offsets of
/// panel p; writes are disjoint across row blocks by construction.
void FillPanelsForRows(const Csr& b, const PanelBoundaries& bounds,
                       index_t row_lo, index_t row_hi,
                       const std::vector<std::vector<offset_t>>& offsets,
                       std::vector<std::vector<index_t>>& cols,
                       std::vector<std::vector<value_t>>& vals) {
  const int num_panels = bounds.num_panels();
  for (index_t r = row_lo; r < row_hi; ++r) {
    // col_offset cursor: resumes where the previous panel stopped.
    offset_t cursor = b.row_begin(r);
    for (int p = 0; p < num_panels; ++p) {
      const index_t start_col = bounds.panel_begin(p);
      const index_t end_col = bounds.panel_end(p);
      offset_t w = offsets[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
      while (cursor < b.row_end(r)) {
        const index_t c = b.col_ids()[static_cast<std::size_t>(cursor)];
        if (c >= end_col) break;  // belongs to a later panel
        OOC_CHECK(c >= start_col);  // sortedness guarantees no back-tracking
        cols[static_cast<std::size_t>(p)][static_cast<std::size_t>(w)] =
            c - start_col;
        vals[static_cast<std::size_t>(p)][static_cast<std::size_t>(w)] =
            b.values()[static_cast<std::size_t>(cursor)];
        ++w;
        ++cursor;
      }
    }
  }
}

std::vector<Csr> PartitionColsImpl(const Csr& b, const PanelBoundaries& bounds,
                                   oocgemm::ThreadPool* pool) {
  OOC_CHECK(bounds.num_panels() >= 1);
  OOC_CHECK(bounds.begin.front() == 0 && bounds.begin.back() == b.cols());
  const int num_panels = bounds.num_panels();
  const std::size_t rows = static_cast<std::size_t>(b.rows());

  // Stage 1: one sweep counts, for every row, the nnz in each panel.
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(num_panels),
      std::vector<std::int64_t>(rows, 0));
  auto count_rows = [&](std::size_t lo, std::size_t hi, std::size_t /*w*/) {
    for (std::size_t r = lo; r < hi; ++r) {
      int p = 0;
      for (offset_t k = b.row_begin(static_cast<index_t>(r));
           k < b.row_end(static_cast<index_t>(r)); ++k) {
        const index_t c = b.col_ids()[static_cast<std::size_t>(k)];
        while (c >= bounds.panel_end(p)) ++p;  // sorted => monotone advance
        ++counts[static_cast<std::size_t>(p)][r];
      }
    }
  };
  if (pool) {
    pool->ParallelFor(0, rows, count_rows, 256);
  } else {
    count_rows(0, rows, 0);
  }

  // Stage 2: allocate each panel from its prefix sums.
  std::vector<std::vector<offset_t>> offsets(static_cast<std::size_t>(num_panels));
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(num_panels));
  std::vector<std::vector<value_t>> vals(static_cast<std::size_t>(num_panels));
  for (int p = 0; p < num_panels; ++p) {
    auto& off = offsets[static_cast<std::size_t>(p)];
    off.resize(rows + 1);
    std::int64_t total;
    if (pool) {
      total = ParallelExclusiveScan(counts[static_cast<std::size_t>(p)].data(),
                                    rows, off.data(), *pool);
    } else {
      total = ExclusiveScan(counts[static_cast<std::size_t>(p)].data(), rows,
                            off.data());
    }
    cols[static_cast<std::size_t>(p)].resize(static_cast<std::size_t>(total));
    vals[static_cast<std::size_t>(p)].resize(static_cast<std::size_t>(total));
  }

  // Stage 3: fill with col_offset cursors, parallel over row blocks.
  auto fill_rows = [&](std::size_t lo, std::size_t hi, std::size_t /*w*/) {
    FillPanelsForRows(b, bounds, static_cast<index_t>(lo),
                      static_cast<index_t>(hi), offsets, cols, vals);
  };
  if (pool) {
    pool->ParallelFor(0, rows, fill_rows, 256);
  } else {
    fill_rows(0, rows, 0);
  }

  std::vector<Csr> panels;
  panels.reserve(static_cast<std::size_t>(num_panels));
  for (int p = 0; p < num_panels; ++p) {
    panels.emplace_back(b.rows(), bounds.panel_width(p),
                        std::move(offsets[static_cast<std::size_t>(p)]),
                        std::move(cols[static_cast<std::size_t>(p)]),
                        std::move(vals[static_cast<std::size_t>(p)]));
  }
  return panels;
}

}  // namespace

std::vector<Csr> PartitionColsOptimized(const Csr& b,
                                        const PanelBoundaries& bounds) {
  return PartitionColsImpl(b, bounds, nullptr);
}

std::vector<Csr> PartitionColsParallel(const Csr& b,
                                       const PanelBoundaries& bounds,
                                       oocgemm::ThreadPool& pool) {
  return PartitionColsImpl(b, bounds, &pool);
}

std::vector<std::int64_t> ColPanelNnz(const Csr& b,
                                      const PanelBoundaries& bounds) {
  std::vector<std::int64_t> nnz(static_cast<std::size_t>(bounds.num_panels()), 0);
  for (index_t r = 0; r < b.rows(); ++r) {
    int p = 0;
    for (offset_t k = b.row_begin(r); k < b.row_end(r); ++k) {
      const index_t c = b.col_ids()[static_cast<std::size_t>(k)];
      while (c >= bounds.panel_end(p)) ++p;
      ++nnz[static_cast<std::size_t>(p)];
    }
  }
  return nnz;
}

std::vector<std::vector<std::int64_t>> ColPanelRowNnz(
    const Csr& b, const PanelBoundaries& bounds) {
  std::vector<std::vector<std::int64_t>> out(
      static_cast<std::size_t>(bounds.num_panels()),
      std::vector<std::int64_t>(static_cast<std::size_t>(b.rows()), 0));
  for (index_t r = 0; r < b.rows(); ++r) {
    int p = 0;
    for (offset_t k = b.row_begin(r); k < b.row_end(r); ++k) {
      const index_t c = b.col_ids()[static_cast<std::size_t>(k)];
      while (c >= bounds.panel_end(p)) ++p;
      ++out[static_cast<std::size_t>(p)][static_cast<std::size_t>(r)];
    }
  }
  return out;
}

}  // namespace oocgemm::partition
