// Panel-count planning: pick (num_row_panels, num_col_panels) so that one
// chunk's working set — both panels, pipeline scratch and the worst-case
// output — fits in device memory, twice over for double buffering.
//
// The paper fixes chunk sizes per matrix empirically ("we select the
// results when synchronous spECK achieves the best performance"); the
// planner automates the same preference: the fewest panels that fit, since
// larger chunks amortize per-chunk overheads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "estimate/estimator.hpp"
#include "kernels/accumulators.hpp"
#include "partition/chunk.hpp"
#include "partition/panels.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::partition {

struct PlanOptions {
  /// Fraction of device memory the plan may use (headroom for allocator
  /// alignment and the baseline's transient mallocs).
  double capacity_fraction = 0.9;
  /// Number of concurrently live chunk working sets (2 = double buffering).
  int buffers = 2;
  /// Search bound per dimension.
  int max_panels_per_dim = 256;
  /// Output pools are sized `nnz_safety_factor` x the sampled-symbolic
  /// chunk-nnz estimate (capped by the worst-case bound).  Executors retry
  /// with a doubled factor if a chunk overflows its pool at run time.
  double nnz_safety_factor = 2.0;
  /// Row fraction for the sampled symbolic estimator; <= 0 disables the
  /// estimator and falls back to worst-case sizing (the configuration the
  /// paper rejects; kept for the ablation bench).
  double nnz_sample_fraction = 0.05;
  /// When > 0, skip the column search and use exactly this many uniform
  /// column panels.  Shared-operand batches force one common B split across
  /// every job so a cached B panel stays valid from job to job; the planner
  /// then fails outright if no row split fits under that choice.
  int forced_col_panels = 0;
  /// Estimation-based planning (OCEAN): replace the sampled-symbolic
  /// analysis (EstimateRowNnz + AnalyzeChunks, O(nnz) walks per search
  /// probe) with the structure-only estimate::EstimateProduct.  Panel
  /// balancing, pool sizing and chunk seeding then come from estimates;
  /// PanelPlan::estimated marks the result so executors correct run stats
  /// from exact per-chunk counts as they execute.
  bool use_sampling_estimator = false;
  /// Seed for the sampling estimator (estimates are deterministic in it).
  std::uint64_t estimator_seed = 1;
  /// Optional precomputed estimate for this exact (A, B) pair — admission
  /// already paid for one; shared_ptr so the hint survives job copies.
  /// Ignored (recomputed) when its row count does not match A.
  std::shared_ptr<const estimate::ProductEstimate> estimate_hint;
  /// Accumulator strategy the chunk phases will run with; kAuto routes per
  /// row group through the kernel registry.  Recorded on the plan so the
  /// whole pipeline (planner -> executors -> kernels) agrees on one choice.
  kernels::AccumulatorKind accumulator = kernels::AccumulatorKind::kAuto;
};

struct PanelPlan {
  int num_row_panels = 1;
  int num_col_panels = 1;
  /// Row panels are balanced by estimated output (consecutive rows, near
  /// equal predicted chunk payloads); column panels are uniform.
  PanelBoundaries row_bounds;
  PanelBoundaries col_bounds;
  /// The sampled-symbolic per-row output prediction the plan was built
  /// from (empty when the estimator is disabled); callers reuse it for
  /// chunk analysis so estimated_nnz is consistent with the pool sizing.
  std::vector<double> row_nnz_estimate;
  /// Size of each per-chunk memory pool: pipeline scratch plus the
  /// worst-case output.  Input panels live in the separate panel cache.
  std::int64_t pool_bytes = 0;
  /// Panel-cache slot sizes (worst A row panel / worst B column panel);
  /// the cache holds two slots of each so uploads double-buffer.
  std::int64_t max_a_panel_bytes = 0;
  std::int64_t max_b_panel_bytes = 0;
  std::int64_t max_output_bytes = 0;

  /// True when the plan was built by the sampling estimator: row_nnz_estimate
  /// / row_products_estimate are estimate::EstimateProduct outputs, chunk
  /// stats seeded from them are estimates, and executors report exact flops
  /// from per-chunk counts instead of trusting the plan.
  bool estimated = false;
  /// Per-row estimated multiply counts (only when estimated).
  std::vector<double> row_products_estimate;
  /// The estimate's SRS relative standard error (only when estimated).
  double estimate_rel_stderr = 0.0;

  /// The accumulator strategy from PlanOptions, carried along so executors
  /// route kernels the way the plan was costed.
  kernels::AccumulatorKind accumulator = kernels::AccumulatorKind::kAuto;

  std::string DebugString() const;
};

/// Plans panel counts for C = A * B on a device with `device_capacity`
/// bytes.  Fails with FailedPrecondition if no partitioning within the
/// search bound fits (device too small even for 1-row panels).
StatusOr<PanelPlan> PlanPanels(const sparse::Csr& a, const sparse::Csr& b,
                               std::int64_t device_capacity,
                               const PlanOptions& options = {});

/// Plans panels for a batch of products C_i = A_i * B sharing the operand
/// B: each job is planned individually first, then every job is re-planned
/// under one common column split (the max column-panel count any member
/// needs), so the column boundaries — and hence the device panel cache ids
/// — of B agree across the whole batch.  Returns one plan per input A, in
/// order; fails if any member cannot fit the device under the shared split.
StatusOr<std::vector<PanelPlan>> PlanSharedOperandPanels(
    const std::vector<const sparse::Csr*>& as, const sparse::Csr& b,
    std::int64_t device_capacity, const PlanOptions& options = {});

/// Working-set bytes of the worst chunk under the given boundaries
/// (exposed for tests and the planner's internals).
std::int64_t MaxChunkWorkingSetBytes(const sparse::Csr& a,
                                     const PanelBoundaries& row_bounds,
                                     const sparse::Csr& b,
                                     const PanelBoundaries& col_bounds);

}  // namespace oocgemm::partition
