#include "partition/chunk.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.hpp"

namespace oocgemm::partition {

using sparse::index_t;
using sparse::offset_t;

std::vector<ChunkDesc> AnalyzeChunks(
    const sparse::Csr& a, const PanelBoundaries& row_bounds,
    const sparse::Csr& b, const PanelBoundaries& col_bounds,
    const std::vector<double>* row_nnz_estimate) {
  OOC_CHECK(a.cols() == b.rows());
  OOC_CHECK(row_nnz_estimate == nullptr ||
            row_nnz_estimate->size() == static_cast<std::size_t>(a.rows()));
  const int nr = row_bounds.num_panels();
  const int nc = col_bounds.num_panels();

  // b_panel_row_nnz[p][k]: nnz of B row k inside column panel p.
  std::vector<std::vector<std::int64_t>> b_panel_row_nnz =
      ColPanelRowNnz(b, col_bounds);

  std::vector<ChunkDesc> chunks(static_cast<std::size_t>(nr) *
                                static_cast<std::size_t>(nc));
  std::vector<std::int64_t> row_flops(static_cast<std::size_t>(nc));
  for (int rp = 0; rp < nr; ++rp) {
    const index_t r0 = row_bounds.panel_begin(rp);
    const index_t r1 = row_bounds.panel_end(rp);
    std::vector<std::int64_t> flops(static_cast<std::size_t>(nc), 0);
    std::vector<std::int64_t> ub(static_cast<std::size_t>(nc), 0);
    std::vector<double> est(static_cast<std::size_t>(nc), 0.0);
    for (index_t r = r0; r < r1; ++r) {
      std::fill(row_flops.begin(), row_flops.end(), 0);
      for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
        const index_t mid = a.col_ids()[static_cast<std::size_t>(k)];
        for (int cp = 0; cp < nc; ++cp) {
          row_flops[static_cast<std::size_t>(cp)] +=
              b_panel_row_nnz[static_cast<std::size_t>(cp)]
                             [static_cast<std::size_t>(mid)];
        }
      }
      std::int64_t row_total = 0;
      for (int cp = 0; cp < nc; ++cp) {
        row_total += row_flops[static_cast<std::size_t>(cp)];
      }
      for (int cp = 0; cp < nc; ++cp) {
        const std::int64_t products = row_flops[static_cast<std::size_t>(cp)];
        const std::int64_t f = 2 * products;
        const std::int64_t row_ub =
            std::min<std::int64_t>(products, col_bounds.panel_width(cp));
        flops[static_cast<std::size_t>(cp)] += f;
        ub[static_cast<std::size_t>(cp)] += row_ub;
        if (row_nnz_estimate != nullptr && row_total > 0) {
          // The chunk gets this row's products share of the predicted
          // full-width row nnz, capped by the hard bound.
          const double share = static_cast<double>(products) /
                               static_cast<double>(row_total);
          est[static_cast<std::size_t>(cp)] += std::min(
              static_cast<double>(row_ub),
              (*row_nnz_estimate)[static_cast<std::size_t>(r)] * share);
        }
      }
    }
    for (int cp = 0; cp < nc; ++cp) {
      ChunkDesc& c = chunks[static_cast<std::size_t>(rp) *
                                static_cast<std::size_t>(nc) +
                            static_cast<std::size_t>(cp)];
      c.row_panel = rp;
      c.col_panel = cp;
      c.flops = flops[static_cast<std::size_t>(cp)];
      c.upper_bound_nnz = ub[static_cast<std::size_t>(cp)];
      c.estimated_nnz =
          row_nnz_estimate != nullptr
              ? std::min(c.upper_bound_nnz,
                         static_cast<std::int64_t>(
                             est[static_cast<std::size_t>(cp)]) +
                             1)
              : c.upper_bound_nnz;
    }
  }
  return chunks;
}

std::vector<ChunkDesc> EstimateChunks(
    const PanelBoundaries& row_bounds, const PanelBoundaries& col_bounds,
    const std::vector<double>& row_nnz, const std::vector<double>& row_products,
    const std::vector<std::int64_t>& col_panel_nnz, std::int64_t b_nnz_total) {
  OOC_CHECK(row_nnz.size() == row_products.size());
  const int nr = row_bounds.num_panels();
  const int nc = col_bounds.num_panels();
  OOC_CHECK(col_panel_nnz.size() == static_cast<std::size_t>(nc));

  // Per-row-panel rollups of the estimate: O(rows) once for all chunks.
  std::vector<double> panel_products(static_cast<std::size_t>(nr), 0.0);
  std::vector<double> panel_nnz(static_cast<std::size_t>(nr), 0.0);
  for (int rp = 0; rp < nr; ++rp) {
    const index_t r0 = row_bounds.panel_begin(rp);
    const index_t r1 = row_bounds.panel_end(rp);
    for (index_t r = r0; r < r1 && static_cast<std::size_t>(r) < row_nnz.size();
         ++r) {
      panel_products[static_cast<std::size_t>(rp)] +=
          row_products[static_cast<std::size_t>(r)];
      panel_nnz[static_cast<std::size_t>(rp)] +=
          row_nnz[static_cast<std::size_t>(r)];
    }
  }

  std::vector<ChunkDesc> chunks(static_cast<std::size_t>(nr) *
                                static_cast<std::size_t>(nc));
  for (int rp = 0; rp < nr; ++rp) {
    const std::int64_t panel_rows = row_bounds.panel_width(rp);
    for (int cp = 0; cp < nc; ++cp) {
      ChunkDesc& c = chunks[static_cast<std::size_t>(rp) *
                                static_cast<std::size_t>(nc) +
                            static_cast<std::size_t>(cp)];
      c.row_panel = rp;
      c.col_panel = cp;
      const double share =
          b_nnz_total > 0
              ? static_cast<double>(col_panel_nnz[static_cast<std::size_t>(cp)]) /
                    static_cast<double>(b_nnz_total)
              : 0.0;
      // The dense bound is the only *true* upper bound available without an
      // exact pass; pool planning stays at estimate * safety, and OOM
      // retries can keep doubling toward this bound.
      c.upper_bound_nnz = panel_rows * col_bounds.panel_width(cp);
      c.flops = static_cast<std::int64_t>(
          2.0 * panel_products[static_cast<std::size_t>(rp)] * share);
      c.estimated_nnz = std::min(
          c.upper_bound_nnz,
          static_cast<std::int64_t>(
              panel_nnz[static_cast<std::size_t>(rp)] * share) +
              1);
    }
  }
  return chunks;
}

namespace {
/// Work class of a chunk: logarithmic buckets 30% apart.  Sorting by class
/// instead of by exact flops keeps Algorithm 3's row-major order (and so
/// panel-cache locality) among chunks of comparable size, while still
/// moving the genuinely heavier chunks to the front as Section IV-C
/// requires.
int FlopsClass(std::int64_t flops) {
  if (flops <= 0) return 0;
  return 1 + static_cast<int>(std::log(static_cast<double>(flops)) /
                              std::log(1.3));
}
}  // namespace

std::vector<int> OrderByFlopsDecreasing(const std::vector<ChunkDesc>& chunks) {
  std::vector<int> order(chunks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int xi, int yi) {
    const ChunkDesc& x = chunks[static_cast<std::size_t>(xi)];
    const ChunkDesc& y = chunks[static_cast<std::size_t>(yi)];
    const int cx = FlopsClass(x.flops);
    const int cy = FlopsClass(y.flops);
    if (cx != cy) return cx > cy;
    // Within a class, walk column panels outermost: consecutive chunks
    // then share the (large) B panel in the device panel cache.
    if (x.col_panel != y.col_panel) return x.col_panel < y.col_panel;
    return x.row_panel < y.row_panel;
  });
  return order;
}

int CountGpuChunks(const std::vector<ChunkDesc>& chunks,
                   const std::vector<int>& order, double ratio) {
  OOC_CHECK(order.size() == chunks.size());
  if (ratio <= 0.0 || chunks.empty()) return 0;
  std::int64_t total = 0;
  for (const auto& c : chunks) total += c.flops;
  if (total == 0 || ratio >= 1.0) return static_cast<int>(chunks.size());
  std::int64_t gpu_flops = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    gpu_flops += chunks[static_cast<std::size_t>(order[i])].flops;
    if (static_cast<double>(gpu_flops) / static_cast<double>(total) >= ratio) {
      return static_cast<int>(i) + 1;
    }
  }
  return static_cast<int>(chunks.size());
}

}  // namespace oocgemm::partition
