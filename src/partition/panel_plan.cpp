#include "partition/panel_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "sparse/analysis.hpp"
#include "sparse/types.hpp"

namespace oocgemm::partition {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

std::int64_t Align(std::int64_t v) { return (v + 255) / 256 * 256; }

/// Device bytes of a CSR panel with `rows` rows and `nnz` entries,
/// including per-array alignment padding.
std::int64_t PanelBytes(std::int64_t rows, std::int64_t nnz) {
  return Align((rows + 1) * static_cast<std::int64_t>(sizeof(offset_t))) +
         Align(nnz * static_cast<std::int64_t>(sizeof(index_t))) +
         Align(nnz * static_cast<std::int64_t>(sizeof(value_t)));
}

struct ChunkSizing {
  std::int64_t max_a = 0;
  std::int64_t max_b = 0;
  std::int64_t max_out = 0;
  std::int64_t max_working_set = 0;
};

void SizeAPanels(const sparse::Csr& a, const PanelBoundaries& row_bounds,
                 ChunkSizing* s) {
  for (int rp = 0; rp < row_bounds.num_panels(); ++rp) {
    const std::int64_t rows = row_bounds.panel_width(rp);
    const std::int64_t nnz = a.row_begin(row_bounds.panel_end(rp)) -
                             a.row_begin(row_bounds.panel_begin(rp));
    s->max_a = std::max(s->max_a, PanelBytes(rows, nnz));
  }
}

void SizeOutputChunks(const std::vector<ChunkDesc>& chunks,
                      const PanelBoundaries& row_bounds,
                      double nnz_safety_factor, ChunkSizing* s) {
  for (const ChunkDesc& c : chunks) {
    const std::int64_t rows = row_bounds.panel_width(c.row_panel);
    // Pipeline scratch: per-row flops + per-row nnz (int64 each).
    const std::int64_t scratch = 2 * Align(rows * 8);
    const std::int64_t planned_nnz = std::min(
        c.upper_bound_nnz,
        static_cast<std::int64_t>(static_cast<double>(c.estimated_nnz) *
                                  nnz_safety_factor) +
            1);
    const std::int64_t out = PanelBytes(rows, planned_nnz);
    s->max_out = std::max(s->max_out, out);
    s->max_working_set = std::max(s->max_working_set, scratch + out);
  }
}

ChunkSizing SizeChunks(const sparse::Csr& a, const PanelBoundaries& row_bounds,
                       const sparse::Csr& b, const PanelBoundaries& col_bounds,
                       const std::vector<double>* row_nnz_estimate,
                       double nnz_safety_factor) {
  ChunkSizing s;
  const int nc = col_bounds.num_panels();
  SizeAPanels(a, row_bounds, &s);

  std::vector<std::int64_t> b_nnz = ColPanelNnz(b, col_bounds);
  for (int cp = 0; cp < nc; ++cp) {
    s.max_b = std::max(
        s.max_b, PanelBytes(b.rows(), b_nnz[static_cast<std::size_t>(cp)]));
  }

  std::vector<ChunkDesc> chunks =
      AnalyzeChunks(a, row_bounds, b, col_bounds, row_nnz_estimate);
  SizeOutputChunks(chunks, row_bounds, nnz_safety_factor, &s);
  return s;
}

/// Estimate-mode sizing: identical working-set accounting, but chunk stats
/// come from EstimateChunks (O(rows + nr*nc)) and B's per-panel nnz is
/// computed once per column candidate by the caller — no O(nnz) walk per
/// row-search probe, which is where the exact planner spends its time.
ChunkSizing SizeChunksEstimated(const sparse::Csr& a,
                                const PanelBoundaries& row_bounds,
                                const sparse::Csr& b,
                                const PanelBoundaries& col_bounds,
                                const std::vector<std::int64_t>& b_col_nnz,
                                const estimate::ProductEstimate& est,
                                double nnz_safety_factor) {
  ChunkSizing s;
  SizeAPanels(a, row_bounds, &s);
  for (std::int64_t nnz : b_col_nnz) {
    s.max_b = std::max(s.max_b, PanelBytes(b.rows(), nnz));
  }
  std::vector<ChunkDesc> chunks =
      EstimateChunks(row_bounds, col_bounds, est.row_nnz, est.row_products,
                     b_col_nnz, b.nnz());
  SizeOutputChunks(chunks, row_bounds, nnz_safety_factor, &s);
  return s;
}

}  // namespace

std::int64_t MaxChunkWorkingSetBytes(const sparse::Csr& a,
                                     const PanelBoundaries& row_bounds,
                                     const sparse::Csr& b,
                                     const PanelBoundaries& col_bounds) {
  return SizeChunks(a, row_bounds, b, col_bounds, nullptr, 1.0)
      .max_working_set;
}

std::string PanelPlan::DebugString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "PanelPlan(%dx%d panels, pool=%lld B, A<=%lld B, B<=%lld B, "
                "out<=%lld B)",
                num_row_panels, num_col_panels,
                static_cast<long long>(pool_bytes),
                static_cast<long long>(max_a_panel_bytes),
                static_cast<long long>(max_b_panel_bytes),
                static_cast<long long>(max_output_bytes));
  return buf;
}

StatusOr<PanelPlan> PlanPanels(const sparse::Csr& a, const sparse::Csr& b,
                               std::int64_t device_capacity,
                               const PlanOptions& options) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch: A is " +
                                   a.DebugString() + ", B is " +
                                   b.DebugString());
  }
  if (options.buffers < 1 || options.capacity_fraction <= 0.0) {
    return Status::InvalidArgument("bad plan options");
  }
  const std::int64_t budget = static_cast<std::int64_t>(
      static_cast<double>(device_capacity) * options.capacity_fraction);

  // Sampled-symbolic row-nnz prediction (full output width; independent of
  // the panel boundaries, so computed once for the whole search).  The same
  // per-row weights drive the work-balanced row boundaries.  In estimate
  // mode the structure-only sampling estimator replaces the exact walk
  // (reusing admission's estimate via the hint when shapes match).
  std::vector<double> row_estimate;
  const std::vector<double>* estimate_ptr = nullptr;
  estimate::ProductEstimate local_est;
  const estimate::ProductEstimate* sampled_est = nullptr;
  if (options.use_sampling_estimator) {
    if (options.estimate_hint != nullptr &&
        options.estimate_hint->row_nnz.size() ==
            static_cast<std::size_t>(a.rows())) {
      sampled_est = options.estimate_hint.get();
    } else {
      estimate::EstimatorOptions eopts;
      if (options.nnz_sample_fraction > 0.0) {
        eopts.row_sample_fraction = options.nnz_sample_fraction;
      }
      eopts.seed = options.estimator_seed;
      local_est = estimate::EstimateProduct(a, b, eopts);
      sampled_est = &local_est;
    }
    row_estimate = sampled_est->row_nnz;
    estimate_ptr = &row_estimate;
  } else if (options.nnz_sample_fraction > 0.0) {
    row_estimate =
        sparse::EstimateRowNnz(a, b, options.nnz_sample_fraction).per_row;
    estimate_ptr = &row_estimate;
  }

  auto row_bounds_for = [&](int nr) {
    return estimate_ptr != nullptr
               ? WeightBalancedBoundaries(row_estimate, nr)
               : UniformBoundaries(a.rows(), nr);
  };

  // Row panels are preferred: they shrink the A panel, the scratch and the
  // output chunk, and — unlike column panels — they never reduce B-panel
  // reuse in the device panel cache (each extra column panel is another
  // large B upload whenever the execution order crosses panels).  Column
  // panels are the fallback for when the B panel itself no longer fits.
  // A forced column count restricts the search to that single candidate.
  std::vector<int> col_candidates;
  if (options.forced_col_panels > 0) {
    col_candidates.push_back(
        std::min(options.forced_col_panels, std::max(1, b.cols())));
  } else {
    for (int nc = 1;
         nc <= options.max_panels_per_dim && nc <= std::max(1, b.cols());
         nc *= 2) {
      col_candidates.push_back(nc);
    }
  }
  ChunkSizing last_sizing{};
  for (int nc : col_candidates) {
    PanelBoundaries cb = UniformBoundaries(b.cols(), nc);
    const int max_nr =
        std::min<int>(options.max_panels_per_dim, std::max(1, a.rows()));

    // Estimate mode hoists the O(nnz(B)) column sweep out of the row
    // search: every probe below is then O(rows + nr * nc).
    std::vector<std::int64_t> b_col_nnz;
    if (sampled_est != nullptr) b_col_nnz = ColPanelNnz(b, cb);

    auto fits = [&](int nr, ChunkSizing* out_sizing) {
      PanelBoundaries rb = row_bounds_for(nr);
      ChunkSizing s =
          sampled_est != nullptr
              ? SizeChunksEstimated(a, rb, b, cb, b_col_nnz, *sampled_est,
                                    options.nnz_safety_factor)
              : SizeChunks(a, rb, b, cb, estimate_ptr,
                           options.nnz_safety_factor);
      if (out_sizing) *out_sizing = s;
      // Panel cache: two slots per matrix so uploads can double-buffer.
      return 2 * (s.max_a + s.max_b) + s.max_working_set * options.buffers <=
             budget;
    };

    // Coarse doubling, then binary refinement to the smallest fitting nr
    // (fewer, larger chunks amortize per-chunk overheads — the paper's
    // "best performing chunk size" preference).
    int nr = 1;
    while (nr < max_nr && !fits(nr, &last_sizing)) nr *= 2;
    nr = std::min(nr, max_nr);
    if (!fits(nr, &last_sizing)) continue;  // B panel too big: more columns
    int lo = nr / 2 + 1, hi = nr;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (fits(mid, nullptr)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    ChunkSizing s;
    OOC_CHECK(fits(hi, &s));
    PanelPlan plan;
    plan.num_row_panels = hi;
    plan.num_col_panels = nc;
    plan.row_bounds = row_bounds_for(hi);
    plan.col_bounds = cb;
    plan.pool_bytes = s.max_working_set;
    plan.max_a_panel_bytes = s.max_a;
    plan.max_b_panel_bytes = s.max_b;
    plan.max_output_bytes = s.max_out;
    plan.row_nnz_estimate = row_estimate;
    plan.accumulator = options.accumulator;
    if (sampled_est != nullptr) {
      plan.estimated = true;
      plan.row_products_estimate = sampled_est->row_products;
      plan.estimate_rel_stderr = sampled_est->rel_stderr;
    }
    return plan;
  }
  return Status::FailedPrecondition(
      "no panel partitioning fits device memory: worst chunk needs " +
      std::to_string(last_sizing.max_working_set) + " bytes x" +
      std::to_string(options.buffers) + " plus panel-cache bytes, budget " +
      std::to_string(budget));
}

StatusOr<std::vector<PanelPlan>> PlanSharedOperandPanels(
    const std::vector<const sparse::Csr*>& as, const sparse::Csr& b,
    std::int64_t device_capacity, const PlanOptions& options) {
  if (as.empty()) {
    return Status::InvalidArgument("shared-operand plan needs at least one A");
  }
  // Pass 1: each member's individually preferred split.
  int shared_nc = std::max(1, options.forced_col_panels);
  for (const sparse::Csr* a : as) {
    OOC_CHECK(a != nullptr);
    auto plan = PlanPanels(*a, b, device_capacity, options);
    if (!plan.ok()) return plan.status();
    shared_nc = std::max(shared_nc, plan->num_col_panels);
  }
  // Pass 2: re-plan every member under the common column split.  Uniform
  // boundaries depend only on (b.cols, shared_nc), so all members end up
  // with identical col_bounds — the invariant the batch executor relies on.
  PlanOptions forced = options;
  forced.forced_col_panels = shared_nc;
  std::vector<PanelPlan> plans;
  plans.reserve(as.size());
  for (const sparse::Csr* a : as) {
    auto plan = PlanPanels(*a, b, device_capacity, forced);
    if (!plan.ok()) return plan.status();
    OOC_CHECK(plan->num_col_panels == shared_nc);
    plans.push_back(std::move(plan).value());
  }
  return plans;
}

}  // namespace oocgemm::partition
