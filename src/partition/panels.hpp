// Panel partitioning (Section III-D of the paper).
//
// Matrix A splits into row panels — trivial under CSR (contiguous row
// ranges).  Matrix B splits into column panels, which is the hard
// direction: CSR cannot address a column range directly, so the paper uses
// a two-stage scheme (count, allocate, fill) and accelerates the fill with
// an auxiliary `col_offset` cursor per row so that each row's scan resumes
// where the previous panel stopped.  Both the simplistic re-scanning
// implementation and the optimized one are provided (the former as the
// paper's rejected baseline, for tests and the partitioning ablation
// bench), plus a prefix-sum-parallel variant of the optimized scheme.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::partition {

/// Panel boundary positions: panel p covers [begin[p], begin[p+1]).
struct PanelBoundaries {
  std::vector<sparse::index_t> begin;

  int num_panels() const { return static_cast<int>(begin.size()) - 1; }
  sparse::index_t panel_begin(int p) const {
    return begin[static_cast<std::size_t>(p)];
  }
  sparse::index_t panel_end(int p) const {
    return begin[static_cast<std::size_t>(p) + 1];
  }
  sparse::index_t panel_width(int p) const {
    return panel_end(p) - panel_begin(p);
  }
};

/// Splits [0, total) into `num_panels` near-equal ranges.
PanelBoundaries UniformBoundaries(sparse::index_t total, int num_panels);

/// Splits [0, rows) into `num_panels` consecutive ranges of approximately
/// equal total `weight` (e.g. estimated output nnz per row), so that no
/// single chunk's buffer dwarfs the others — the skew that otherwise
/// forces very fine partitions.  Zero-weight tails still receive panels.
PanelBoundaries WeightBalancedBoundaries(const std::vector<double>& weights,
                                         int num_panels);

/// Row panels of A: panel p is rows [begin[p], begin[p+1]) with rebased
/// offsets (O(1) metadata + array copies; embarrassingly parallel).
std::vector<sparse::Csr> PartitionRows(const sparse::Csr& a,
                                       const PanelBoundaries& bounds);

/// Column panels of B with panel-local column ids.  Simplistic version:
/// for every panel, re-scan every row from row_offsets[r] (quadratic in the
/// panel count; the paper's rejected baseline).
std::vector<sparse::Csr> PartitionColsNaive(const sparse::Csr& b,
                                            const PanelBoundaries& bounds);

/// Optimized version: one counting sweep builds all panels' row counts,
/// then a fill sweep advances a per-row col_offset cursor so every element
/// is visited exactly once across all panels.
std::vector<sparse::Csr> PartitionColsOptimized(const sparse::Csr& b,
                                                const PanelBoundaries& bounds);

/// Optimized version parallelized "in a prefix sum fashion" over row blocks.
std::vector<sparse::Csr> PartitionColsParallel(const sparse::Csr& b,
                                               const PanelBoundaries& bounds,
                                               oocgemm::ThreadPool& pool);

/// nnz of each column panel (first stage of the two-stage scheme; also the
/// planner's sizing input).  O(nnz) single sweep.
std::vector<std::int64_t> ColPanelNnz(const sparse::Csr& b,
                                      const PanelBoundaries& bounds);

/// Per-panel, per-row nnz of B — b_panel_row_nnz[p][k] = nnz of row k of B
/// restricted to panel p.  Input to chunk-flop computation (GetFlops).
std::vector<std::vector<std::int64_t>> ColPanelRowNnz(
    const sparse::Csr& b, const PanelBoundaries& bounds);

}  // namespace oocgemm::partition
