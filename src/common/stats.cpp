#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace oocgemm {

namespace {
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.total = std::accumulate(values.begin(), values.end(), 0.0);
  s.mean = s.total / static_cast<double>(values.size());
  double m2 = 0.0;
  for (double v : values) m2 += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(m2 / static_cast<double>(values.size()));
  s.p50 = Percentile(values, 0.50);
  s.p90 = Percentile(values, 0.90);
  s.p95 = Percentile(values, 0.95);
  s.p99 = Percentile(values, 0.99);
  return s;
}

double GiniCoefficient(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cum += values[i];
    weighted += values[i] * static_cast<double>(i + 1);
  }
  if (cum <= 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace oocgemm
