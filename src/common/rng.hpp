// Deterministic, seedable pseudo-random generators.
//
// All stochastic components of the library (matrix generators, workload
// shufflers, property-test sweeps) draw from these generators so that every
// run, test, and benchmark is bit-reproducible across platforms.  We do not
// use std::mt19937 / std::uniform_*_distribution because their outputs are
// not guaranteed identical across standard library implementations.
#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace oocgemm {

/// SplitMix64: tiny, fast, passes BigCrush; used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR 64/32): the library's main generator.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0x14057b7ef767814full) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  std::uint32_t NextU32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t NextU64() {
    return (static_cast<std::uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  std::uint32_t Below(std::uint32_t bound) {
    OOC_CHECK(bound > 0);
    std::uint64_t m = static_cast<std::uint64_t>(NextU32()) * bound;
    std::uint32_t lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(NextU32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  std::uint64_t Below64(std::uint64_t bound) {
    OOC_CHECK(bound > 0);
    // Simple modulo fallback for 64-bit bounds; bias is negligible for the
    // bounds used in this library (far below 2^63).
    return NextU64() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace oocgemm
