#include "common/prefix_sum.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "common/thread_pool.hpp"

namespace oocgemm {

std::int64_t ExclusiveScanInPlace(std::int64_t* io, std::size_t n) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t v = io[i];
    io[i] = sum;
    sum += v;
  }
  return sum;
}

std::int64_t ExclusiveScan(const std::int64_t* counts, std::size_t n,
                           std::int64_t* offsets) {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = sum;
    sum += counts[i];
  }
  offsets[n] = sum;
  return sum;
}

std::vector<std::int64_t> ExclusiveScan(const std::vector<std::int64_t>& counts) {
  std::vector<std::int64_t> offsets(counts.size() + 1);
  ExclusiveScan(counts.data(), counts.size(), offsets.data());
  return offsets;
}

std::int64_t ParallelExclusiveScan(const std::int64_t* counts, std::size_t n,
                                   std::int64_t* offsets, ThreadPool& pool) {
  constexpr std::size_t kSerialCutoff = 1 << 14;
  if (n < kSerialCutoff || pool.num_threads() <= 1) {
    return ExclusiveScan(counts, n, offsets);
  }
  const std::size_t p = pool.num_threads();
  const std::size_t block = (n + p - 1) / p;
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<std::int64_t> block_sums(num_blocks, 0);

  // Pass 1: local exclusive scans, recording each block's total.
  pool.ParallelFor(0, num_blocks, [&](std::size_t b0, std::size_t b1,
                                      std::size_t /*worker*/) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      std::int64_t sum = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        offsets[i] = sum;
        sum += counts[i];
      }
      block_sums[b] = sum;
    }
  });

  // Serial scan of the (tiny) block totals.
  std::int64_t total = ExclusiveScanInPlace(block_sums.data(), num_blocks);

  // Pass 2: add block bases.
  pool.ParallelFor(0, num_blocks, [&](std::size_t b0, std::size_t b1,
                                      std::size_t /*worker*/) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      const std::int64_t base = block_sums[b];
      for (std::size_t i = lo; i < hi; ++i) offsets[i] += base;
    }
  });
  offsets[n] = total;
  return total;
}

}  // namespace oocgemm
