#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/status.hpp"

namespace oocgemm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(std::size_t /*worker_index*/) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t p = num_threads();
  min_grain = std::max<std::size_t>(1, min_grain);
  std::size_t num_blocks = std::min(p, (n + min_grain - 1) / min_grain);
  if (num_blocks <= 1) {
    fn(begin, end, 0);
    return;
  }
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  // One task per worker slot; worker_index == task index so per-slot scratch
  // is never shared between concurrent tasks.
  //
  // Completion is tracked per call, not with the pool-global Wait(): several
  // threads (the serving runtime's scheduler workers) may run ParallelFor on
  // the shared pool concurrently, and each caller must return as soon as its
  // own blocks finish, regardless of other tenants' in-flight work.
  struct CallState {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
  } state;
  state.remaining = num_blocks;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t lo = begin + b * block;
    const std::size_t hi = std::min(end, lo + block);
    Submit([&fn, &state, lo, hi, b] {
      fn(lo, hi, b);
      std::unique_lock<std::mutex> lock(state.mutex);
      if (--state.remaining == 0) state.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.cv.wait(lock, [&state] { return state.remaining == 0; });
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace oocgemm
