// Fixed-size worker pool with a blocking parallel-for.
//
// The CPU-side SpGEMM kernel (Nagasaka-style, Section III-C of the paper)
// and the partitioners use this pool.  Work is divided into contiguous
// blocks; each task receives [begin, end) so that per-thread scratch (hash
// tables, dense accumulators) can be reused across iterations of a block.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oocgemm {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 picks hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(block_begin, block_end, worker_index) over [begin, end) split
  /// into roughly num_threads * oversubscribe blocks; blocks until done.
  /// worker_index < num_threads() identifies the scratch slot the task may
  /// use; blocks with the same worker_index never run concurrently.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn,
                   std::size_t min_grain = 1);

 private:
  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Process-wide pool for callers that do not manage their own.
ThreadPool& GlobalThreadPool();

}  // namespace oocgemm
