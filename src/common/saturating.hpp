// Saturating std::int64_t arithmetic for capacity/demand accounting.
//
// Admission control forms byte and flop products from user-supplied shapes
// (rows * cols, nnz * entry_bytes).  A hostile or merely huge synthetic
// shape (10M x 10M) overflows int64 products, wraps negative, and then
// *passes* every "demand <= budget" check.  These helpers clamp to
// [INT64_MIN, INT64_MAX] instead of wrapping, so demand math stays monotone
// and oversized jobs are rejected rather than admitted by accident.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace oocgemm::common {

inline constexpr std::int64_t kInt64Max =
    std::numeric_limits<std::int64_t>::max();

/// a + b clamped to the int64 range.
inline std::int64_t SaturatingAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? kInt64Max : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

/// a * b clamped to the int64 range.
inline std::int64_t SaturatingMul(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return ((a > 0) == (b > 0)) ? kInt64Max
                                : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

/// double -> int64 with clamping.  NaN maps to 0 (an unknown quantity
/// should not look infinitely large to an admission check).
inline std::int64_t SaturatingCast(double v) {
  if (std::isnan(v)) return 0;
  // 2^63 is exactly representable as a double; INT64_MAX is not.
  if (v >= 9223372036854775808.0) return kInt64Max;
  if (v <= -9223372036854775808.0) {
    return std::numeric_limits<std::int64_t>::min();
  }
  return static_cast<std::int64_t>(v);
}

/// True when the value sits at either saturation rail — the signal that an
/// upstream product clamped and the real quantity is unrepresentable.
inline bool IsSaturated(std::int64_t v) {
  return v == kInt64Max || v == std::numeric_limits<std::int64_t>::min();
}

}  // namespace oocgemm::common
