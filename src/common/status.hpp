// Lightweight error-handling primitives used across the library.
//
// Recoverable failures (I/O errors, out-of-device-memory, malformed input)
// travel through Status / StatusOr<T>.  Programming errors (precondition
// violations) abort through OOC_CHECK, matching the "fail fast on contract
// violation" idiom of the C++ Core Guidelines (I.6/E.12).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace oocgemm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
  kDataLoss,
};

/// Returns a short human-readable name for a status code ("OK", "IO_ERROR"...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier.  An engaged message is only present for
/// non-OK statuses.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfMemory(std::string m) {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Either a value or a non-OK Status.  Minimal std::expected stand-in.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}                 // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}         // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    require_value();
    return *value_;
  }
  const T& value() const& {
    require_value();
    return *value_;
  }
  T&& value() && {
    require_value();
    return std::move(*value_);
  }
  T* operator->() {
    require_value();
    return &*value_;
  }
  const T* operator->() const {
    require_value();
    return &*value_;
  }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "StatusOr accessed without value: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::Ok();
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "OOC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

/// Contract check active in every build type (unlike assert).
#define OOC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::oocgemm::detail::CheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

#define OOC_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::oocgemm::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace oocgemm
