// Minimal leveled logger.  Off by default above WARNING so benchmark output
// stays clean; tests and examples can raise verbosity.
#pragma once

#include <string>

namespace oocgemm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const std::string& message);

#define OOC_LOG(level, msg)                                          \
  do {                                                               \
    if (static_cast<int>(::oocgemm::LogLevel::level) >=              \
        static_cast<int>(::oocgemm::GetLogLevel()))                  \
      ::oocgemm::LogMessage(::oocgemm::LogLevel::level, (msg));      \
  } while (0)

}  // namespace oocgemm
