// Small descriptive-statistics helpers for benchmark reporting and for the
// matrix analyses (degree skew, chunk-size spread) in the evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oocgemm {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;   // population
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double total = 0.0;
};

/// Computes count/min/max/mean/stddev/percentiles; empty input gives zeros.
Summary Summarize(std::vector<double> values);

/// Gini coefficient in [0,1] of a non-negative distribution; the skewness
/// proxy we use to characterize the paper's graph matrices vs the regular
/// FEM/optimization matrices.
double GiniCoefficient(std::vector<double> values);

/// Streaming mean/variance (Welford).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace oocgemm
