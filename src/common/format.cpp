#include "common/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/status.hpp"

namespace oocgemm {

namespace {
std::string FormatWith(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string HumanBytes(std::int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (std::abs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string HumanCount(double count) {
  const char* units[] = {"", "K", "M", "G", "T", "P"};
  double v = count;
  int u = 0;
  while (std::abs(v) >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return FormatWith("%.3f s", seconds);
  if (seconds >= 1e-3) return FormatWith("%.3f ms", seconds * 1e3);
  if (seconds >= 1e-6) return FormatWith("%.3f us", seconds * 1e6);
  return FormatWith("%.1f ns", seconds * 1e9);
}

std::string Fixed(double v, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  return FormatWith(fmt, v);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  OOC_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OOC_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };
  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace oocgemm
