// Wall-clock timer for host-side measurements (the virtual-GPU timeline has
// its own simulated clock in src/vgpu/vtime.hpp).
#pragma once

#include <chrono>

namespace oocgemm {

class WallTimer {
 public:
  WallTimer() { Reset(); }
  void Reset() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oocgemm
