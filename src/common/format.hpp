// Human-readable formatting and a fixed-width table printer shared by every
// benchmark binary so the emitted tables line up with the paper's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oocgemm {

/// "1.50 GB", "312.00 MB", "17 B" ... (binary prefixes, 1024-based).
std::string HumanBytes(std::int64_t bytes);

/// "1.23 G", "456.00 M" ... (decimal prefixes) for counts such as flops.
std::string HumanCount(double count);

/// Seconds with an auto-chosen unit ("1.23 s", "45.6 ms", "789 us").
std::string HumanSeconds(double seconds);

/// Fixed-point with `digits` decimals.
std::string Fixed(double v, int digits = 2);

/// `s` as a quoted JSON string literal: quotes/backslashes escaped, control
/// characters emitted as \uXXXX.  Every hand-rolled JSON emitter in the
/// repo must route externally-supplied strings (tenant ids, labels, paths)
/// through this — a hostile tenant id must not be able to malform a report.
std::string JsonEscape(const std::string& s);

/// Column-aligned plain-text table.  Usage:
///   TablePrinter t({"matrix", "GFLOPS"}); t.AddRow({"nlp", "2.42"}); t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;
  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oocgemm
