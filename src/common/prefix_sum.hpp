// Serial and blocked-parallel prefix sums.
//
// Prefix sums are the backbone of CSR construction, panel partitioning and
// symbolic-to-numeric transitions; the paper parallelizes its column-panel
// partitioner "in a prefix sum fashion" (Section III-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oocgemm {

class ThreadPool;

/// In-place exclusive scan: out[i] = sum of in[0..i).  Returns total sum.
/// `io` holds counts on entry and offsets on exit; its size is n.
std::int64_t ExclusiveScanInPlace(std::int64_t* io, std::size_t n);

/// Exclusive scan of `counts` (size n) into `offsets` (size n + 1), with
/// offsets[n] = total.  The conventional CSR row_offsets construction.
std::int64_t ExclusiveScan(const std::int64_t* counts, std::size_t n,
                           std::int64_t* offsets);

/// Overload building the offsets vector (size n + 1).
std::vector<std::int64_t> ExclusiveScan(const std::vector<std::int64_t>& counts);

/// Blocked two-pass parallel exclusive scan using `pool`; equivalent output
/// to ExclusiveScan.  Falls back to serial for small n.
std::int64_t ParallelExclusiveScan(const std::int64_t* counts, std::size_t n,
                                   std::int64_t* offsets, ThreadPool& pool);

}  // namespace oocgemm
