#include "calibrate/calibrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace oocgemm::calibrate {
namespace {

// Guard rails on published values: the route scales stay within a band so
// one pathological tick cannot flip every routing decision, and the hybrid
// ratio never collapses to "all CPU" / "all GPU" (both extremes starve the
// other lane and the fit loses its signal).
constexpr double kMinRouteScale = 0.25;
constexpr double kMaxRouteScale = 8.0;
constexpr double kMinGpuRatio = 0.05;
constexpr double kMaxGpuRatio = 0.95;

obs::Labels DeviceLabels(int index) {
  return {{"device", std::to_string(index)}};
}

obs::Labels FitLabels(int index, const char* fit) {
  return {{"device", std::to_string(index)}, {"fit", fit}};
}

/// Counter delta with reset tolerance: a ResetForTest (or registry swap)
/// makes the counter go backwards; treat that as "resync, no sample".
double Delta(double now, double* prev) {
  const double d = now - *prev;
  *prev = now;
  return d >= 0.0 ? d : 0.0;
}

}  // namespace

const char* CalibrateModeName(CalibrateMode mode) {
  switch (mode) {
    case CalibrateMode::kOff:
      return "off";
    case CalibrateMode::kObserve:
      return "observe";
    case CalibrateMode::kApply:
      return "apply";
  }
  return "off";
}

bool ParseCalibrateMode(const std::string& text, CalibrateMode* mode) {
  if (text == "off") {
    *mode = CalibrateMode::kOff;
  } else if (text == "observe") {
    *mode = CalibrateMode::kObserve;
  } else if (text == "apply") {
    *mode = CalibrateMode::kApply;
  } else {
    return false;
  }
  return true;
}

CostModelCalibrator::CostModelCalibrator(CalibratorConfig config,
                                         core::DevicePool* pool,
                                         obs::MetricsRegistry* registry)
    : config_(config), pool_(pool), registry_(registry), cpu_fit_(config.fit) {
  const int n = pool_ != nullptr ? pool_->size() : 0;
  fits_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fits_.push_back(DeviceFits{
        LinearFit(config_.fit), LinearFit(config_.fit),
        OverheadRateFit(config_.fit,
                        config_.static_rates.kernel_launch_overhead)});
  }
  // Baseline: counters accumulated before the calibrator existed must not
  // contaminate the first tick's deltas.
  std::lock_guard<std::mutex> lock(mutex_);
  IngestLocked(registry_->Snapshot(), /*record=*/false);
}

CostModelCalibrator::~CostModelCalibrator() { Stop(); }

void CostModelCalibrator::Start() {
  if (config_.mode == CalibrateMode::kOff) return;
  if (config_.interval_seconds > 0.0 && !thread_.joinable()) {
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread(&CostModelCalibrator::ThreadLoop, this);
  }
}

void CostModelCalibrator::Stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    // The final tick: traffic between the last periodic tick and Stop is
    // still folded in, so short runs calibrate too.
    TickNow();
  }
}

void CostModelCalibrator::TickNow() {
  const obs::RegistrySnapshot snap = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  IngestLocked(snap, /*record=*/true);
  for (DeviceFits& f : fits_) {
    f.h2d.Commit();
    f.d2h.Commit();
    f.rate.Commit();
  }
  cpu_fit_.Commit();
  PublishLocked();
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const CalibratedModel> CostModelCalibrator::model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_;
}

void CostModelCalibrator::ThreadLoop() {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.interval_seconds));
  Clock::time_point next = Clock::now() + interval;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (Clock::now() >= next) {
      TickNow();
      next = Clock::now() + interval;
    }
  }
}

void CostModelCalibrator::IngestLocked(const obs::RegistrySnapshot& snap,
                                       bool record) {
  for (int i = 0; i < static_cast<int>(fits_.size()); ++i) {
    DeviceFits& f = fits_[static_cast<std::size_t>(i)];
    const obs::Labels labels = DeviceLabels(i);
    const double h2d_b =
        Delta(snap.Value("oocgemm_vgpu_h2d_bytes", labels), &f.h2d_bytes);
    const double h2d_s =
        Delta(snap.Value("oocgemm_vgpu_h2d_seconds", labels), &f.h2d_seconds);
    const double d2h_b =
        Delta(snap.Value("oocgemm_vgpu_d2h_bytes", labels), &f.d2h_bytes);
    const double d2h_s =
        Delta(snap.Value("oocgemm_vgpu_d2h_seconds", labels), &f.d2h_seconds);
    const double launches = Delta(
        snap.Value("oocgemm_vgpu_kernel_launches", labels), &f.launches);
    const double flops =
        Delta(snap.Value("oocgemm_kernels_device_flops", labels), &f.flops);
    const double kernel_s = Delta(
        snap.Value("oocgemm_vgpu_kernel_seconds", labels), &f.kernel_seconds);
    if (!record) continue;
    if (h2d_b > 0.0 && h2d_s > 0.0) f.h2d.Add(h2d_b, h2d_s);
    if (d2h_b > 0.0 && d2h_s > 0.0) f.d2h.Add(d2h_b, d2h_s);
    // The kernel-seconds counter records wall intervals *including* any
    // injected delay faults — exactly the degradation signal the fitted
    // effective rate must see.
    if (flops > 0.0 && kernel_s > 0.0) f.rate.Add(launches, flops, kernel_s);
  }
  const double cpu_f = Delta(snap.Value("oocgemm_core_cpu_flops"), &cpu_flops_);
  const double cpu_s =
      Delta(snap.Value("oocgemm_core_cpu_seconds"), &cpu_seconds_);
  if (record && cpu_f > 0.0 && cpu_s > 0.0) cpu_fit_.Add(cpu_f, cpu_s);
}

void CostModelCalibrator::PublishLocked() {
  const ExecRates& s = config_.static_rates;

  CalibratedModel::CpuModel cpu;
  cpu.confident = cpu_fit_.confident();
  cpu.flop_rate = cpu.confident ? cpu_fit_.rate() : s.cpu_flop_rate;

  std::vector<CalibratedModel::DeviceModel> devices(fits_.size());
  for (std::size_t i = 0; i < fits_.size(); ++i) {
    const DeviceFits& f = fits_[i];
    CalibratedModel::DeviceModel& d = devices[i];
    d.h2d_confident = f.h2d.confident();
    d.h2d_bandwidth = d.h2d_confident ? f.h2d.rate() : s.h2d_bandwidth;
    d.d2h_confident = f.d2h.confident();
    d.d2h_bandwidth = d.d2h_confident ? f.d2h.rate() : s.d2h_bandwidth;
    d.rate_confident = f.rate.confident() && f.rate.effective_rate() > 0.0;
    // Steering uses the *effective* rate (per-launch overhead included at
    // the observed launch intensity): a device drowning in launch delay
    // must look slow to the split/placement levers even though its
    // marginal flop rate stays healthy.
    d.flop_rate = d.rate_confident ? f.rate.effective_rate() : s.gpu_flop_rate;
    d.launch_overhead =
        d.rate_confident ? f.rate.overhead() : s.kernel_launch_overhead;
    if (d.rate_confident && cpu.confident && cpu.flop_rate > 0.0) {
      // The paper's split rule with live inputs: Ratio = S/(S+1), S the
      // *fitted* GPU/CPU speedup of this device.
      const double speedup = d.flop_rate / cpu.flop_rate;
      d.gpu_ratio =
          std::clamp(speedup / (speedup + 1.0), kMinGpuRatio, kMaxGpuRatio);
      d.ratio_confident = true;
    }
    if (d.rate_confident && d.flop_rate > 0.0) {
      d.routing.compute_scale = std::clamp(s.gpu_flop_rate / d.flop_rate,
                                           kMinRouteScale, kMaxRouteScale);
      d.routing.overhead_scale =
          s.kernel_launch_overhead > 0.0
              ? std::clamp(d.launch_overhead / s.kernel_launch_overhead,
                           kMinRouteScale, kMaxRouteScale)
              : 1.0;
    }
  }

  // Apply mode steers placement: push the fitted effective rate into the
  // pool so least-reserved ties prefer the faster (undegraded) device.
  if (config_.mode == CalibrateMode::kApply && pool_ != nullptr) {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      pool_->set_rate_hint(static_cast<int>(i),
                           devices[i].rate_confident ? devices[i].flop_rate
                                                     : 0.0);
    }
  }

  // oocgemm_calibrate_* exports: one gauge per fitted quantity plus
  // sample/outlier accounting, so dashboards (and the feedback test) can
  // watch the loop converge.
  obs::MetricsRegistry& reg = *registry_;
  reg.GetCounter("oocgemm_calibrate_ticks", {}, "Calibration passes run")
      .Add(1);
  for (std::size_t i = 0; i < fits_.size(); ++i) {
    const int idx = static_cast<int>(i);
    const DeviceFits& f = fits_[i];
    const CalibratedModel::DeviceModel& d = devices[i];
    struct Row {
      const char* fit;
      std::int64_t samples, outliers;
      bool confident;
      double fitted;
    } rows[] = {
        {"h2d", f.h2d.samples(), f.h2d.outliers(), d.h2d_confident,
         d.h2d_bandwidth},
        {"d2h", f.d2h.samples(), f.d2h.outliers(), d.d2h_confident,
         d.d2h_bandwidth},
        {"rate", f.rate.samples(), f.rate.outliers(), d.rate_confident,
         d.flop_rate},
    };
    for (const Row& r : rows) {
      const obs::Labels labels = FitLabels(idx, r.fit);
      reg.GetGauge("oocgemm_calibrate_samples", labels,
                   "Committed samples per fit")
          .Set(r.samples);
      reg.GetGauge("oocgemm_calibrate_outliers", labels,
                   "Winsorized samples per fit")
          .Set(r.outliers);
      reg.GetGauge("oocgemm_calibrate_confident", labels,
                   "1 when the fit passed the confidence gate")
          .Set(r.confident ? 1 : 0);
      reg.GetGauge("oocgemm_calibrate_fitted_rate", labels,
                   "Fitted rate (bytes/s or flops/s), static while gated")
          .Set(static_cast<std::int64_t>(r.fitted));
    }
    reg.GetGauge("oocgemm_calibrate_gpu_ratio_millis", DeviceLabels(idx),
                 "Fitted hybrid split ratio x1000 (static when 0 samples)")
        .Set(static_cast<std::int64_t>(
            std::lround((d.ratio_confident ? d.gpu_ratio : 0.0) * 1000.0)));
    reg.GetHistogram("oocgemm_calibrate_rate_residual", DeviceLabels(idx),
                     "Relative residual scale of the device rate fit")
        .Record(f.rate.residual_scale());
  }
  reg.GetGauge("oocgemm_calibrate_cpu_flop_rate", {},
               "Fitted CPU effective flop rate (static while gated)")
      .Set(static_cast<std::int64_t>(cpu.flop_rate));
  reg.GetGauge("oocgemm_calibrate_cpu_confident", {},
               "1 when the CPU rate fit passed the confidence gate")
      .Set(cpu.confident ? 1 : 0);

  model_ = std::make_shared<const CalibratedModel>(std::move(devices), cpu);
}

}  // namespace oocgemm::calibrate
