// Closed-loop cost-model calibration from live metrics.
//
// The repo's planning constants are static (DeviceProperties bandwidths,
// CostModel flop rates, ExecutorOptions::gpu_ratio = 0.67 from the paper's
// Ratio = S/(S+1) rule) even though devices drift at runtime — they are
// heterogeneous, and injected delay faults degrade them mid-run.  The
// obs registry already records, per device, the ground truth those
// constants approximate: h2d/d2h bytes *and* engine-busy seconds, kernel
// seconds (including injected delays), and — added with this subsystem —
// per-device numeric flops plus CPU flops/seconds.
//
// CostModelCalibrator closes the loop.  Each tick it snapshots the
// registry, forms per-device (delta bytes, delta seconds) and
// (delta flops, delta seconds) samples, and feeds them to robust online
// regressions (calibrate/fit.hpp).  When a refit passes the confidence
// gate it publishes a CalibratedModel consumed at four decision points:
//
//   (a) hybrid split — the scheduler overrides gpu_ratio with the
//       dispatched device's S/(S+1), S = fitted device rate / fitted CPU
//       rate (paper rule, live inputs);
//   (b) admission — EstimateJobDemand[Sampled] price latency with the
//       fitted rates (AdmissionRates);
//   (c) placement — DevicePool least-reserved ties break on the fitted
//       effective rate, steering work off degraded devices;
//   (d) kernel routing — RouteRow cost scales track the fitted/static
//       rate ratio.
//
// Modes: kOff (no calibrator), kObserve (fit + oocgemm_calibrate_*
// metrics, decisions stay static), kApply (fitted model feeds all four
// decision points).  Ticks come from an optional background thread
// (interval_seconds > 0) or explicit TickNow() calls (tests, benches).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "calibrate/fit.hpp"
#include "calibrate/model.hpp"
#include "core/device_pool.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::calibrate {

enum class CalibrateMode { kOff, kObserve, kApply };

const char* CalibrateModeName(CalibrateMode mode);
/// Parses "off" / "observe" / "apply"; false on anything else.
bool ParseCalibrateMode(const std::string& text, CalibrateMode* mode);

struct CalibratorConfig {
  CalibrateMode mode = CalibrateMode::kOff;
  /// Background tick period in wall seconds; 0 disables the thread (ticks
  /// then only happen through TickNow()).
  double interval_seconds = 0.0;
  FitConfig fit;
  /// Static reference rates the fits are gated against and compared to.
  ExecRates static_rates = StaticExecRates();
};

class CostModelCalibrator {
 public:
  /// Observes the pool's devices (metric labels {"device", index}).  The
  /// baseline snapshot is taken here, so counters accumulated before the
  /// calibrator existed never contaminate the first tick's deltas.  Does
  /// not own the pool.
  CostModelCalibrator(CalibratorConfig config, core::DevicePool* pool,
                      obs::MetricsRegistry* registry =
                          &obs::MetricsRegistry::Default());
  ~CostModelCalibrator();

  CostModelCalibrator(const CostModelCalibrator&) = delete;
  CostModelCalibrator& operator=(const CostModelCalibrator&) = delete;

  /// Starts the background tick thread when interval_seconds > 0.
  void Start();
  /// Stops the thread (idempotent); one final tick runs first so the last
  /// interval's traffic is never lost.
  void Stop();

  /// One calibration pass: snapshot, delta, fit, publish.  Thread-safe.
  void TickNow();

  /// The latest fitted model (never null after the first tick; null
  /// before).  Confidence gates live inside the model, so callers use it
  /// unconditionally.
  std::shared_ptr<const CalibratedModel> model() const;

  /// The model the serving stack should *act* on: model() in kApply mode,
  /// null otherwise (observe mode fits and exports but never steers).
  std::shared_ptr<const CalibratedModel> apply_model() const {
    return config_.mode == CalibrateMode::kApply ? model() : nullptr;
  }

  const CalibratorConfig& config() const { return config_; }
  std::int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  struct DeviceFits {
    LinearFit h2d;        // (bytes, seconds)
    LinearFit d2h;        // (bytes, seconds)
    OverheadRateFit rate; // (launches, flops, kernel seconds w/ delays)
    // Previous-tick counter values (deltas are formed against these).
    double h2d_bytes = 0.0, h2d_seconds = 0.0;
    double d2h_bytes = 0.0, d2h_seconds = 0.0;
    double launches = 0.0, flops = 0.0, kernel_seconds = 0.0;
  };

  void ThreadLoop();
  /// Requires mutex_ held.  Forms counter deltas against the previous tick
  /// and feeds them to the fits (`record` false only seeds the baseline).
  void IngestLocked(const obs::RegistrySnapshot& snap, bool record);
  /// Requires mutex_ held.  Builds and publishes the model + metrics.
  void PublishLocked();

  CalibratorConfig config_;
  core::DevicePool* pool_;
  obs::MetricsRegistry* registry_;

  mutable std::mutex mutex_;
  std::vector<DeviceFits> fits_;
  LinearFit cpu_fit_;
  double cpu_flops_ = 0.0, cpu_seconds_ = 0.0;
  std::shared_ptr<const CalibratedModel> model_;

  std::atomic<std::int64_t> ticks_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace oocgemm::calibrate
