// The calibrated cost model: per-device constants the calibrator fitted
// from live metrics, plus the decision hooks the serving stack consults.
//
// Every hook degrades to the static behaviour when the underlying fit is
// not confident, and a model built by FromStatic() — carrying exactly the
// static constants — reproduces every static decision bit-for-bit (the
// differential harness in test_calibrate_differential.cpp pins this down):
//
//  * GpuRatioFor returns the stored per-device hybrid ratio verbatim (the
//    calibrator stores S/(S+1) of the fitted per-device speedup; FromStatic
//    stores the caller's static ratio itself, so no recomputation can
//    introduce a ulp of drift);
//  * RouteScalesFor returns identity scales unless the device's compute
//    fit diverged from the static rate;
//  * AdmissionRates returns the static transfer/compute rates for every
//    quantity whose fit has not yet passed the confidence gate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "kernels/cost_model.hpp"
#include "kernels/kernel_registry.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::calibrate {

/// The transfer/compute rates one admission-time latency estimate uses.
/// All rates are "effective, end to end" (they absorb launch overheads and
/// phase mix), which is exactly what a latency estimate wants.
struct ExecRates {
  double h2d_bandwidth = 0.0;        // bytes/s
  double d2h_bandwidth = 0.0;        // bytes/s
  double gpu_flop_rate = 0.0;        // flops/s through the whole GPU pipeline
  double cpu_flop_rate = 0.0;        // flops/s of the multicore path
  double kernel_launch_overhead = 0.0;  // seconds per kernel launch
};

/// The static reference rates, derived from the same constants the
/// executors hard-code: DeviceProperties bandwidths and the CostModel
/// rates at a reference compression ratio.  This is the baseline every
/// fitted rate is compared against, and the admission fallback while the
/// confidence gate holds.
ExecRates StaticExecRates(
    const kernels::CostModel& cm = {},
    const vgpu::DeviceProperties& props = vgpu::ScaledV100Properties(10));

/// Reference compression ratio at which the static flop rates are taken
/// (the serve workload's typical band; only used as a fixed operating
/// point so fitted and static rates are comparable).
inline constexpr double kReferenceCompressionRatio = 4.0;

class CalibratedModel {
 public:
  struct DeviceModel {
    double h2d_bandwidth = 0.0;   // bytes/s; valid iff h2d_confident
    double d2h_bandwidth = 0.0;
    double flop_rate = 0.0;       // effective flops/s; valid iff rate_confident
    /// Fitted seconds per kernel launch; valid iff rate_confident (the
    /// two-term fit resolves both together, or falls back to the static
    /// overhead, which is stored here either way).
    double launch_overhead = 0.0;
    /// Hybrid split ratio S/(S+1) from this device's fitted speedup over
    /// the fitted CPU rate; valid iff ratio_confident.
    double gpu_ratio = 0.0;
    /// Routing cost scales vs the static model (identity when the fit
    /// matches the static constants).
    kernels::RouteCalibration routing;
    bool h2d_confident = false;
    bool d2h_confident = false;
    bool rate_confident = false;
    bool ratio_confident = false;
  };
  struct CpuModel {
    double flop_rate = 0.0;
    bool confident = false;
  };

  CalibratedModel(std::vector<DeviceModel> devices, CpuModel cpu)
      : devices_(std::move(devices)), cpu_(cpu) {}

  /// A model carrying exactly the static constants for `num_devices`
  /// devices: static_ratio stored verbatim, identity route scales, rates
  /// from StaticExecRates.  Feeding this model to any decision point must
  /// reproduce the static decision — the differential harness's fixture.
  static CalibratedModel FromStatic(int num_devices, double static_ratio,
                                    const ExecRates& rates = StaticExecRates());

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const DeviceModel& device(int index) const {
    return devices_[static_cast<std::size_t>(index)];
  }
  const CpuModel& cpu() const { return cpu_; }

  /// Hybrid split ratio for a job dispatched to `device`: the stored
  /// fitted ratio, or `static_ratio` while the fit is not confident (or
  /// the index is out of range — a CPU-only dispatch).
  double GpuRatioFor(int device, double static_ratio) const {
    if (device < 0 || device >= num_devices()) return static_ratio;
    const DeviceModel& d = devices_[static_cast<std::size_t>(device)];
    return d.ratio_confident ? d.gpu_ratio : static_ratio;
  }

  /// Routing cost scales for kernels launched on `device`; identity while
  /// not confident.
  kernels::RouteCalibration RouteScalesFor(int device) const {
    if (device < 0 || device >= num_devices()) return {};
    const DeviceModel& d = devices_[static_cast<std::size_t>(device)];
    return d.rate_confident ? d.routing : kernels::RouteCalibration{};
  }

  /// Rates for an admission-time latency estimate.  Jobs are not yet
  /// placed at admission, so each quantity takes the *best* confident
  /// device (admission asks "can any device make the deadline", mirroring
  /// feasibility against the largest pool device); quantities with no
  /// confident fit keep the static value.
  ExecRates AdmissionRates(const ExecRates& static_rates) const;

  /// Fitted effective flop rate of `device`, or 0 when not confident —
  /// the DevicePool placement tie-break hint.
  double RateHintFor(int device) const {
    if (device < 0 || device >= num_devices()) return 0.0;
    const DeviceModel& d = devices_[static_cast<std::size_t>(device)];
    return d.rate_confident ? d.flop_rate : 0.0;
  }

 private:
  std::vector<DeviceModel> devices_;
  CpuModel cpu_;
};

/// The admission-time latency estimate: transfer at the model's bandwidths
/// plus compute at the model's effective rate plus per-chunk launch
/// overheads (kLaunchesPerChunk kernels per chunk: analysis, up to a
/// handful of symbolic and numeric group launches).  GPU-infeasible jobs
/// are priced at the CPU rate.  Deterministic in its inputs — the
/// differential harness relies on bitwise equality when the rates match.
inline constexpr double kLaunchesPerChunk = 8.0;

double EstimateExecSeconds(std::int64_t flops, std::int64_t bytes_in,
                           std::int64_t bytes_out, bool gpu_feasible,
                           int planned_chunks, const ExecRates& rates);

}  // namespace oocgemm::calibrate
