// Robust online regression primitives for the cost-model calibrator.
//
// Every constant the calibrator re-fits is the slope of a line through the
// origin: seconds = x / rate for x in {bytes, flops}.  The fit is an
// EWMA-weighted least squares over (x, seconds) samples:
//
//   rate = Sxx / Sxy,   Sxx = sum(w_i x_i^2),  Sxy = sum(w_i x_i y_i)
//
// with three robustness properties the tests pin down:
//
//  * Tick batching + order invariance.  Samples accumulate into a pending
//    buffer; Commit() sorts them canonically, weighs each against the fit
//    state *frozen at the previous Commit*, and only then folds them into
//    the moments.  Two calibrators fed the same sample multiset in any
//    order therefore produce bit-identical fits.
//  * Winsorized outlier rejection.  A sample whose residual against the
//    frozen fit exceeds `outlier_k` times the EWMA residual scale is not
//    dropped — its weight is clamped so it contributes as much as a
//    barely-acceptable sample.  One faulted run cannot poison the fit, but
//    a *persistent* shift (a degraded device) keeps pulling the slope until
//    the fit tracks it.
//  * Confidence gate.  Until `min_samples` samples accrued (and the slope
//    is finite and positive), confident() is false and callers keep their
//    static defaults.
//
// EWMA decay is applied once per Commit (per calibrator tick), not per
// sample, so the half-life is measured in ticks regardless of how much
// traffic a tick observed.
#pragma once

#include <cstdint>
#include <vector>

namespace oocgemm::calibrate {

struct FitConfig {
  /// Retained fraction of the accumulated moments per Commit (per tick):
  /// weight of a sample t ticks old is decay^t.  1.0 = plain least squares.
  double decay = 0.8;
  /// Samples before confident() turns true (the static-defaults gate).
  int min_samples = 6;
  /// Winsorization threshold in units of the EWMA residual scale.
  double outlier_k = 4.0;
};

/// Through-origin EWMA-weighted least squares of y = slope * x.
class LinearFit {
 public:
  explicit LinearFit(FitConfig config = {});

  /// Buffers one sample for the next Commit.  x must be > 0 and y >= 0;
  /// anything else is silently ignored (a tick with no traffic produces
  /// zero deltas, which are not samples).
  void Add(double x, double y);

  /// Folds the pending samples into the fit: decays the prior moments,
  /// weighs each pending sample against the pre-Commit fit state (sorted
  /// canonically, so sample order never matters) and updates slope and
  /// residual scale.  A Commit with no pending samples only decays.
  void Commit();

  /// Seconds per unit; 0 until the first Commit with data.
  double slope() const { return slope_; }
  /// Units per second (1 / slope); 0 until a positive slope exists.
  double rate() const { return slope_ > 0.0 ? 1.0 / slope_ : 0.0; }

  /// True once min_samples committed samples accrued with a usable slope.
  bool confident() const {
    return samples_ >= config_.min_samples && slope_ > 0.0;
  }

  std::int64_t samples() const { return samples_; }
  /// Samples whose weight was clamped by the winsorization rule.
  std::int64_t outliers() const { return outliers_; }
  /// EWMA of |residual| / predicted, the relative residual scale.
  double residual_scale() const { return residual_scale_; }

 private:
  FitConfig config_;
  std::vector<std::pair<double, double>> pending_;
  double w_sum_ = 0.0;   // decayed sum of weights
  double sxx_ = 0.0;     // decayed sum of w * x^2
  double sxy_ = 0.0;     // decayed sum of w * x * y
  double slope_ = 0.0;
  double residual_scale_ = 0.0;
  std::int64_t samples_ = 0;
  std::int64_t outliers_ = 0;
};

/// Two-term EWMA-weighted least squares of
///
///   seconds = overhead * launches + flops / rate
///
/// — the kernel-engine model: a fixed per-launch cost plus throughput-rate
/// compute.  Solved from the decayed 2x2 normal equations at each Commit;
/// when the regressors are collinear (every tick has the same
/// flops-per-launch, so the system cannot separate the terms) the fit
/// falls back to through-origin rate at a caller-supplied static overhead.
/// Same tick batching, frozen-state winsorization and order invariance as
/// LinearFit.
class OverheadRateFit {
 public:
  explicit OverheadRateFit(FitConfig config = {},
                           double static_overhead = 0.0);

  /// Buffers one tick sample: `launches` kernel launches, `flops` of work,
  /// `seconds` of engine-busy time.  Non-positive flops/seconds or
  /// negative launches are ignored.
  void Add(double launches, double flops, double seconds);
  void Commit();

  /// Marginal flops/s with the per-launch overhead separated out; 0 until
  /// a usable fit exists.
  double rate() const { return inv_rate_ > 0.0 ? 1.0 / inv_rate_ : 0.0; }
  /// Observed end-to-end flops/s at the traffic's launch intensity: the
  /// EWMA-weighted total flops over total engine-busy seconds, overhead
  /// *included*.  This is the throughput a scheduler actually gets from the
  /// device, so split/placement decisions steer on it — a device drowning
  /// in per-launch delay looks slow here even though its marginal rate()
  /// stays healthy.
  double effective_rate() const { return ss_ > 0.0 ? sf_ / ss_ : 0.0; }
  /// Fitted seconds per launch.  Falls back to the static overhead while
  /// the normal equations cannot separate the terms.
  double overhead() const { return overhead_; }
  /// True when the last solve separated overhead from rate (vs falling
  /// back to the static overhead).
  bool overhead_resolved() const { return overhead_resolved_; }

  bool confident() const {
    return samples_ >= config_.min_samples && inv_rate_ > 0.0;
  }
  std::int64_t samples() const { return samples_; }
  std::int64_t outliers() const { return outliers_; }
  double residual_scale() const { return residual_scale_; }

 private:
  struct Sample {
    double l, f, s;
    bool operator<(const Sample& o) const {
      if (l != o.l) return l < o.l;
      if (f != o.f) return f < o.f;
      return s < o.s;
    }
  };

  FitConfig config_;
  double static_overhead_;
  std::vector<Sample> pending_;
  // Decayed weighted moments of the normal equations.
  double sll_ = 0.0, slf_ = 0.0, sff_ = 0.0, sls_ = 0.0, sfs_ = 0.0;
  // Decayed weighted first moments for effective_rate().
  double sf_ = 0.0, ss_ = 0.0;
  double overhead_ = 0.0;
  double inv_rate_ = 0.0;  // seconds per flop
  bool overhead_resolved_ = false;
  double residual_scale_ = 0.0;
  std::int64_t samples_ = 0;
  std::int64_t outliers_ = 0;
};

}  // namespace oocgemm::calibrate
