#include "calibrate/fit.hpp"

#include <algorithm>
#include <cmath>

namespace oocgemm::calibrate {

LinearFit::LinearFit(FitConfig config) : config_(config) {
  config_.decay = std::clamp(config_.decay, 0.0, 1.0);
  config_.min_samples = std::max(1, config_.min_samples);
  config_.outlier_k = std::max(1.0, config_.outlier_k);
}

void LinearFit::Add(double x, double y) {
  if (!(x > 0.0) || !(y >= 0.0) || !std::isfinite(x) || !std::isfinite(y)) {
    return;
  }
  pending_.push_back({x, y});
}

void LinearFit::Commit() {
  // Decay first: the prior moments age one tick whether or not traffic
  // arrived, so an idle stretch lets fresh evidence dominate sooner.
  w_sum_ *= config_.decay;
  sxx_ *= config_.decay;
  sxy_ *= config_.decay;
  if (pending_.empty()) return;

  // Canonical order: every weight below is computed against the fit state
  // frozen at entry (frozen_slope / frozen_scale), so after sorting, the
  // folded moments are independent of the order Add was called in.
  std::sort(pending_.begin(), pending_.end());
  const double frozen_slope = slope_;
  const double frozen_scale = residual_scale_;
  const bool warmed = samples_ >= config_.min_samples && frozen_slope > 0.0;

  double scale_acc = 0.0;
  double scale_n = 0.0;
  for (const auto& [x, y] : pending_) {
    double weight = 1.0;
    const double predicted = frozen_slope * x;
    double rel_residual = 0.0;
    if (predicted > 0.0) {
      rel_residual = std::abs(y - predicted) / predicted;
      // Winsorize once the fit warmed up: clamp the sample's weight so its
      // pull equals a residual at the acceptance edge.  floor(1e-3 * scale)
      // keeps a long quiet streak from making the gate infinitely strict.
      const double gate =
          config_.outlier_k * std::max(frozen_scale, 1e-3);
      if (warmed && rel_residual > gate) {
        weight = gate / rel_residual;
        ++outliers_;
      }
    }
    w_sum_ += weight;
    sxx_ += weight * x * x;
    sxy_ += weight * x * y;
    scale_acc += rel_residual;
    scale_n += 1.0;
    ++samples_;
  }
  pending_.clear();

  if (sxx_ > 0.0) slope_ = sxy_ / sxx_;
  // Residual scale: EWMA over ticks of the mean relative residual, seeded
  // by the first tick's value so the winsorization gate starts calibrated.
  const double tick_scale = scale_n > 0.0 ? scale_acc / scale_n : 0.0;
  residual_scale_ = residual_scale_ == 0.0
                        ? tick_scale
                        : config_.decay * residual_scale_ +
                              (1.0 - config_.decay) * tick_scale;
}

OverheadRateFit::OverheadRateFit(FitConfig config, double static_overhead)
    : config_(config),
      static_overhead_(std::max(0.0, static_overhead)),
      overhead_(static_overhead_) {
  config_.decay = std::clamp(config_.decay, 0.0, 1.0);
  config_.min_samples = std::max(1, config_.min_samples);
  config_.outlier_k = std::max(1.0, config_.outlier_k);
}

void OverheadRateFit::Add(double launches, double flops, double seconds) {
  if (!(flops > 0.0) || !(seconds > 0.0) || !(launches >= 0.0) ||
      !std::isfinite(flops) || !std::isfinite(seconds) ||
      !std::isfinite(launches)) {
    return;
  }
  pending_.push_back({launches, flops, seconds});
}

void OverheadRateFit::Commit() {
  const double d = config_.decay;
  sll_ *= d; slf_ *= d; sff_ *= d; sls_ *= d; sfs_ *= d;
  sf_ *= d; ss_ *= d;
  if (pending_.empty()) return;

  std::sort(pending_.begin(), pending_.end());
  const double frozen_overhead = overhead_;
  const double frozen_inv_rate = inv_rate_;
  const double frozen_scale = residual_scale_;
  const bool warmed = samples_ >= config_.min_samples && frozen_inv_rate > 0.0;

  double scale_acc = 0.0;
  double scale_n = 0.0;
  for (const Sample& p : pending_) {
    double weight = 1.0;
    const double predicted = frozen_overhead * p.l + frozen_inv_rate * p.f;
    double rel_residual = 0.0;
    if (predicted > 0.0) {
      rel_residual = std::abs(p.s - predicted) / predicted;
      const double gate = config_.outlier_k * std::max(frozen_scale, 1e-3);
      if (warmed && rel_residual > gate) {
        weight = gate / rel_residual;
        ++outliers_;
      }
    }
    sll_ += weight * p.l * p.l;
    slf_ += weight * p.l * p.f;
    sff_ += weight * p.f * p.f;
    sls_ += weight * p.l * p.s;
    sfs_ += weight * p.f * p.s;
    sf_ += weight * p.f;
    ss_ += weight * p.s;
    scale_acc += rel_residual;
    scale_n += 1.0;
    ++samples_;
  }
  pending_.clear();

  // Solve the 2x2 normal equations; a near-singular system (constant
  // flops-per-launch across ticks) cannot separate overhead from rate, so
  // fall back to through-origin rate at the static overhead.
  const double det = sll_ * sff_ - slf_ * slf_;
  overhead_resolved_ = false;
  if (sff_ > 0.0) {
    if (det > 1e-9 * sll_ * sff_ && sll_ > 0.0) {
      const double o = (sls_ * sff_ - sfs_ * slf_) / det;
      const double ir = (sfs_ * sll_ - sls_ * slf_) / det;
      if (o >= 0.0 && ir > 0.0) {
        overhead_ = o;
        inv_rate_ = ir;
        overhead_resolved_ = true;
      }
    }
    if (!overhead_resolved_) {
      overhead_ = static_overhead_;
      // Attribute the static per-launch cost, then fit the remainder as
      // pure rate: inv_rate = sum w f (s - o l) / sum w f^2.
      const double adjusted = sfs_ - static_overhead_ * slf_;
      inv_rate_ = adjusted > 0.0 ? adjusted / sff_ : sfs_ / sff_;
    }
  }

  const double tick_scale = scale_n > 0.0 ? scale_acc / scale_n : 0.0;
  residual_scale_ = residual_scale_ == 0.0
                        ? tick_scale
                        : config_.decay * residual_scale_ +
                              (1.0 - config_.decay) * tick_scale;
}

}  // namespace oocgemm::calibrate
