#include "calibrate/model.hpp"

#include <cmath>

namespace oocgemm::calibrate {

ExecRates StaticExecRates(const kernels::CostModel& cm,
                          const vgpu::DeviceProperties& props) {
  ExecRates r;
  r.h2d_bandwidth = props.h2d_bandwidth;
  r.d2h_bandwidth = props.d2h_bandwidth;
  r.gpu_flop_rate = cm.NumericRate(kReferenceCompressionRatio);
  // The CPU model is seconds = coeff * flops / cr^exp; at the reference
  // compression ratio the effective rate is the inverse per-flop cost.
  r.cpu_flop_rate =
      1.0 / (cm.cpu_seconds_per_flop_coeff /
             std::pow(kReferenceCompressionRatio, cm.cpu_flop_exponent));
  r.kernel_launch_overhead = props.kernel_launch_overhead;
  return r;
}

CalibratedModel CalibratedModel::FromStatic(int num_devices,
                                            double static_ratio,
                                            const ExecRates& rates) {
  std::vector<DeviceModel> devices(
      static_cast<std::size_t>(std::max(0, num_devices)));
  for (DeviceModel& d : devices) {
    d.h2d_bandwidth = rates.h2d_bandwidth;
    d.d2h_bandwidth = rates.d2h_bandwidth;
    d.flop_rate = rates.gpu_flop_rate;
    d.launch_overhead = rates.kernel_launch_overhead;
    d.gpu_ratio = static_ratio;  // stored verbatim: zero recomputation drift
    d.routing = kernels::RouteCalibration{};
    d.h2d_confident = d.d2h_confident = true;
    d.rate_confident = d.ratio_confident = true;
  }
  CpuModel cpu;
  cpu.flop_rate = rates.cpu_flop_rate;
  cpu.confident = true;
  return CalibratedModel(std::move(devices), cpu);
}

ExecRates CalibratedModel::AdmissionRates(const ExecRates& static_rates) const {
  ExecRates r = static_rates;
  double best_h2d = 0.0, best_d2h = 0.0, best_rate = 0.0;
  double best_rate_overhead = 0.0;
  for (const DeviceModel& d : devices_) {
    if (d.h2d_confident) best_h2d = std::max(best_h2d, d.h2d_bandwidth);
    if (d.d2h_confident) best_d2h = std::max(best_d2h, d.d2h_bandwidth);
    if (d.rate_confident && d.flop_rate > best_rate) {
      best_rate = d.flop_rate;
      best_rate_overhead = d.launch_overhead;
    }
  }
  if (best_h2d > 0.0) r.h2d_bandwidth = best_h2d;
  if (best_d2h > 0.0) r.d2h_bandwidth = best_d2h;
  if (best_rate > 0.0) {
    r.gpu_flop_rate = best_rate;
    r.kernel_launch_overhead = best_rate_overhead;
  }
  if (cpu_.confident && cpu_.flop_rate > 0.0) r.cpu_flop_rate = cpu_.flop_rate;
  return r;
}

double EstimateExecSeconds(std::int64_t flops, std::int64_t bytes_in,
                           std::int64_t bytes_out, bool gpu_feasible,
                           int planned_chunks, const ExecRates& rates) {
  const double f = static_cast<double>(std::max<std::int64_t>(0, flops));
  if (!gpu_feasible) {
    return rates.cpu_flop_rate > 0.0 ? f / rates.cpu_flop_rate : 0.0;
  }
  double seconds = 0.0;
  if (rates.h2d_bandwidth > 0.0) {
    seconds += static_cast<double>(std::max<std::int64_t>(0, bytes_in)) /
               rates.h2d_bandwidth;
  }
  if (rates.d2h_bandwidth > 0.0) {
    seconds += static_cast<double>(std::max<std::int64_t>(0, bytes_out)) /
               rates.d2h_bandwidth;
  }
  if (rates.gpu_flop_rate > 0.0) seconds += f / rates.gpu_flop_rate;
  seconds += rates.kernel_launch_overhead * kLaunchesPerChunk *
             static_cast<double>(std::max(0, planned_chunks));
  return seconds;
}

}  // namespace oocgemm::calibrate
