#include "obs/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace oocgemm::obs {

namespace {

std::string RenderLabels(const Labels& labels, const char* extra_key = nullptr,
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;  // le bounds never need escaping
    out += '"';
  }
  out += '}';
  return out;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonLabels(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, k);
    out += ':';
    AppendJsonString(out, v);
  }
  out += '}';
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        // The exposition format only defines the three escapes above; any
        // other control byte (tenant ids are arbitrary) would corrupt the
        // line structure, so replace it instead of passing it through.
        if (static_cast<unsigned char>(c) < 0x20) {
          out += '_';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const MetricFamily& f : snapshot.families) {
    // Prometheus counter convention: the exposition name carries _total;
    // the registry name stays suffix-free so JSON and code agree.
    const std::string name =
        f.kind == MetricKind::kCounter ? f.name + "_total" : f.name;
    out += "# HELP " + name + " " + (f.help.empty() ? f.name : f.help) + "\n";
    out += "# TYPE " + name + " " + MetricKindName(f.kind) + "\n";
    for (const MetricPoint& p : f.points) {
      if (f.kind != MetricKind::kHistogram) {
        out += name + RenderLabels(p.labels) + " " +
               FormatMetricValue(p.value) + "\n";
        continue;
      }
      const HistogramSnapshot& h = p.histogram;
      std::int64_t cumulative = 0;
      for (const HistogramSnapshot::Bucket& b : h.buckets) {
        cumulative += b.count;
        out += name + "_bucket" +
               RenderLabels(p.labels, "le", FormatMetricValue(b.upper)) + " " +
               FormatMetricValue(static_cast<double>(cumulative)) + "\n";
      }
      out += name + "_bucket" + RenderLabels(p.labels, "le", "+Inf") + " " +
             FormatMetricValue(static_cast<double>(h.count)) + "\n";
      out += name + "_sum" + RenderLabels(p.labels) + " " +
             FormatMetricValue(h.sum) + "\n";
      out += name + "_count" + RenderLabels(p.labels) + " " +
             FormatMetricValue(static_cast<double>(h.count)) + "\n";
    }
  }
  return out;
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const MetricFamily& f : snapshot.families) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":";
    AppendJsonString(out, f.name);
    out += ",\"kind\":";
    AppendJsonString(out, MetricKindName(f.kind));
    out += ",\"help\":";
    AppendJsonString(out, f.help);
    out += ",\"points\":[";
    bool first_point = true;
    for (const MetricPoint& p : f.points) {
      if (!first_point) out += ',';
      first_point = false;
      out += "{\"labels\":";
      AppendJsonLabels(out, p.labels);
      if (f.kind != MetricKind::kHistogram) {
        out += ",\"value\":" + FormatMetricValue(p.value);
      } else {
        const HistogramSnapshot& h = p.histogram;
        out += ",\"count\":" + FormatMetricValue(static_cast<double>(h.count));
        out += ",\"sum\":" + FormatMetricValue(h.sum);
        out += ",\"min\":" + FormatMetricValue(h.min);
        out += ",\"max\":" + FormatMetricValue(h.max);
        out += ",\"p50\":" + FormatMetricValue(h.Quantile(0.50));
        out += ",\"p95\":" + FormatMetricValue(h.Quantile(0.95));
        out += ",\"p99\":" + FormatMetricValue(h.Quantile(0.99));
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (const HistogramSnapshot::Bucket& b : h.buckets) {
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += "{\"le\":" + FormatMetricValue(b.upper) +
                 ",\"count\":" + FormatMetricValue(static_cast<double>(b.count)) +
                 "}";
        }
        out += ']';
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out << contents;
    if (!out.good()) return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace oocgemm::obs
