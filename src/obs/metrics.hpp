// Live metrics for the long-running serving node.
//
// The repo's existing accounting (RunStats, ServerReport, vgpu::Trace) is
// post-mortem: one snapshot when a run or server finishes.  The paper's
// claims are about *where time goes* while the system runs — transfer
// fraction vs compute (Fig. 4), async overlap (Fig. 8), the CPU/GPU flop
// split (Fig. 10) — so a serving deployment needs the same signal
// continuously.  This header provides the process-wide instrumentation
// surface every layer records into:
//
//  * Counter / DoubleCounter — monotone, sharded over cache-line-padded
//    atomics so concurrent writers (scheduler workers, device ops on many
//    threads) never contend on one line.  Reads sum the shards.
//  * Gauge — a single atomic level (queue depth, device bytes in use).
//  * LogBucketHistogram — log-spaced buckets (2^(1/bp2) growth) over a wide
//    dynamic range, for latency/bytes/flops distributions.  Mergeable, and
//    quantile estimates carry an explicit relative-error bound of one
//    bucket width (tested against oocgemm::Summarize).
//  * MetricsRegistry — names + labels -> instruments.  Instruments live for
//    the registry's lifetime, so call sites resolve once and record through
//    a raw pointer.  Snapshot() returns a consistent point-in-time view:
//    each instrument is read atomically; after writers quiesce the snapshot
//    equals the exact totals (no lost updates — tested under TSan).
//
// Recording is wait-free apart from the histogram min/max CAS loops, and a
// disabled registry (set_enabled(false)) turns every write into a no-op, so
// instrumentation can stay on hot paths unconditionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace oocgemm::obs {

/// Label set of one instrument, e.g. {{"device", "0"}}.  The registry sorts
/// by key, so insertion order never leaks into metric identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr int kShards = 16;

/// Round-robin thread->shard assignment: each thread writes its own shard
/// (mod kShards), so the common case is an uncontended cache line.
std::size_t ShardIndex();

template <typename T>
class Sharded {
 public:
  explicit Sharded(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void Add(T delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    AtomicAdd(shards_[ShardIndex()].value, delta);
  }

  T Value() const {
    T total{};
    for (const auto& s : shards_) total += s.value.load(std::memory_order_acquire);
    return total;
  }

  void ResetForTest() {
    for (auto& s : shards_) s.value.store(T{}, std::memory_order_release);
  }

 private:
  static void AtomicAdd(std::atomic<std::int64_t>& a, std::int64_t d) {
    a.fetch_add(d, std::memory_order_relaxed);
  }
  static void AtomicAdd(std::atomic<double>& a, double d) {
    // CAS loop instead of C++20 fetch_add(double): identical semantics,
    // supported by every toolchain this repo targets.
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }

  struct alignas(64) Shard {
    std::atomic<T> value{};
  };
  Shard shards_[kShards];
  const std::atomic<bool>* enabled_;
};

}  // namespace detail

/// Monotone integer counter (events, bytes).  Thread-safe, sharded.
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : cells_(enabled) {}
  void Add(std::int64_t delta = 1) { cells_.Add(delta); }
  std::int64_t Value() const { return cells_.Value(); }
  void ResetForTest() { cells_.ResetForTest(); }

 private:
  detail::Sharded<std::int64_t> cells_;
};

/// Monotone floating-point counter (virtual seconds).  Thread-safe, sharded.
class DoubleCounter {
 public:
  explicit DoubleCounter(const std::atomic<bool>* enabled) : cells_(enabled) {}
  void Add(double delta) { cells_.Add(delta); }
  double Value() const { return cells_.Value(); }
  void ResetForTest() { cells_.ResetForTest(); }

 private:
  detail::Sharded<double> cells_;
};

/// A level that moves both ways (queue depth, bytes in use).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Set(std::int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_release);
  }
  void Add(std::int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_acquire); }
  void ResetForTest() { value_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Point-in-time view of a histogram.  Buckets are the non-empty ones, in
/// ascending order; bucket i covers (lower, upper] with upper/lower equal
/// to the histogram's growth factor (the zero bucket, holding values <= 0,
/// has lower == upper == 0).
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::int64_t count = 0;
  };
  std::vector<Bucket> buckets;
  /// Growth factor 2^(1/buckets_per_pow2) — the relative-error bound of
  /// every quantile estimate.
  double growth = 0.0;

  /// Bounds of the bucket holding the q-quantile (rank ceil(q*count)),
  /// clamped to the observed [min, max].  Well-defined on every input:
  /// {0, 0} when the histogram is empty or q is NaN; {min, max} (i.e. the
  /// sample itself) when exactly one value was recorded; q outside [0, 1]
  /// clamps to the nearest end, so q=0.0 reports the min bucket and q=1.0
  /// the max bucket.  Never indexes outside the bucket array.
  std::pair<double, double> QuantileBounds(double q) const;
  /// Point estimate: the upper bound of the quantile bucket (clamped).
  double Quantile(double q) const { return QuantileBounds(q).second; }
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Log-bucketed histogram over (0, +inf), with a dedicated bucket for
/// values <= 0.  Bucket boundaries are 2^(i / buckets_per_pow2): recording
/// costs one log2 plus two relaxed atomic adds, and any quantile read off
/// the buckets is within one bucket width (factor 2^(1/bp2)) of the exact
/// order statistic.  Histograms with equal resolution merge exactly
/// (bucket-count addition) — the property the per-device -> fleet rollup
/// relies on, tested in test_obs_metrics.cpp.
class LogBucketHistogram {
 public:
  static constexpr int kDefaultBucketsPerPow2 = 8;  // growth ~1.09: <=9% error
  static constexpr int kMinExp = -64;               // ~5.4e-20
  static constexpr int kMaxExp = 64;                // ~1.8e19

  explicit LogBucketHistogram(const std::atomic<bool>* enabled,
                              int buckets_per_pow2 = kDefaultBucketsPerPow2);

  void Record(double value);
  /// Adds `other`'s contents into this histogram; resolutions must match.
  void MergeFrom(const LogBucketHistogram& other);

  HistogramSnapshot Snapshot() const;
  int buckets_per_pow2() const { return bp2_; }
  std::int64_t Count() const { return count_.load(std::memory_order_acquire); }

  void ResetForTest();

 private:
  int BucketIndex(double value) const;  // 0 == the <=0 bucket
  double UpperBound(int index) const;
  double LowerBound(int index) const;

  int bp2_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  const std::atomic<bool>* enabled_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/// One instrument's state inside a RegistrySnapshot.
struct MetricPoint {
  Labels labels;
  double value = 0.0;               // counters and gauges
  HistogramSnapshot histogram;      // histograms
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricPoint> points;  // sorted by label signature
};

/// Consistent point-in-time view of a whole registry, ordered by metric
/// name — the exporters' and tests' input.
struct RegistrySnapshot {
  std::vector<MetricFamily> families;

  /// Counter/gauge value, or 0 when the instrument does not exist.
  double Value(const std::string& name, const Labels& labels = {}) const;
  /// Histogram snapshot, or nullptr when absent.
  const HistogramSnapshot* Histogram(const std::string& name,
                                     const Labels& labels = {}) const;
};

/// Name -> instrument registry.  Get* returns a stable reference: the
/// instrument is created on first use and lives until the registry dies, so
/// call sites resolve once (constructor, static local) and record through
/// the reference with no further locking.  Re-registering with a different
/// kind is a programming error (OOC_CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument records into.
  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  DoubleCounter& GetDoubleCounter(const std::string& name,
                                  const Labels& labels = {},
                                  const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  LogBucketHistogram& GetHistogram(
      const std::string& name, const Labels& labels = {},
      const std::string& help = "",
      int buckets_per_pow2 = LogBucketHistogram::kDefaultBucketsPerPow2);

  /// While disabled every recording call is a no-op; instruments keep their
  /// prior values and Snapshot() keeps working.  (The reconciliation test's
  /// "disabled mode records nothing" contract.)
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  RegistrySnapshot Snapshot() const;

  /// Zeroes every registered instrument (tests only; references stay valid).
  void ResetForTest();

 private:
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<DoubleCounter> double_counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogBucketHistogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    bool floating = false;  // counter family backed by DoubleCounter
    std::string help;
    std::map<std::string, Instrument> by_labels;  // key: serialized labels
  };

  // Requires mutex_ held: callers create the missing instrument under the
  // same critical section, so racing Get*s resolve to one object.
  Instrument& ResolveLocked(const std::string& name, const Labels& labels,
                            const std::string& help, MetricKind kind,
                            bool floating);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  std::atomic<bool> enabled_{true};
};

/// Sorts by key and serializes a label set into the registry's canonical
/// signature (also the exporters' ordering key).
std::string LabelSignature(const Labels& labels);

}  // namespace oocgemm::obs
