#include "obs/kernel_metrics.hpp"

namespace oocgemm::obs {

KernelStrategyMetrics KernelMetricsFor(const char* strategy) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const Labels labels = {{"strategy", strategy}};
  KernelStrategyMetrics m;
  m.rows_total = &reg.GetCounter(
      "oocgemm_kernel_rows", labels,
      "Output rows executed per accumulator strategy");
  m.symbolic_seconds = &reg.GetDoubleCounter(
      "oocgemm_kernel_symbolic_seconds", labels,
      "Wall seconds spent in the symbolic phase per strategy");
  m.numeric_seconds = &reg.GetDoubleCounter(
      "oocgemm_kernel_numeric_seconds", labels,
      "Wall seconds spent in the numeric phase per strategy");
  m.misroutes = &reg.GetCounter(
      "oocgemm_kernel_misroutes", labels,
      "Rows routed to this strategy whose post-hoc best strategy differed");
  return m;
}

LogBucketHistogram& KernelMisrouteCostRatio() {
  return MetricsRegistry::Default().GetHistogram(
      "oocgemm_kernel_misroute_cost_ratio", {},
      "Modeled cost of the routed strategy over the post-hoc best, "
      "mis-routed rows only");
}

}  // namespace oocgemm::obs
