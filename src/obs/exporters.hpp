// Serialization of a RegistrySnapshot for scraping.
//
// Two formats, both deterministic (families sorted by name, points by
// label signature) so golden-file tests and artifact diffs are stable:
//
//  * Prometheus text exposition v0.0.4 — counters get the `_total` suffix,
//    histograms expand into cumulative `_bucket{le="..."}` series plus
//    `_sum`/`_count`, label values are escaped per the spec.
//  * JSON — one object per family with raw (unsuffixed) names and explicit
//    kind, for tooling that wants structure instead of a scrape format.
#pragma once

#include <string>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::obs {

std::string ToPrometheusText(const RegistrySnapshot& snapshot);
std::string ToJson(const RegistrySnapshot& snapshot);

/// Escapes a label value for the Prometheus text format (backslash, double
/// quote, newline).
std::string EscapeLabelValue(const std::string& value);

/// Prometheus/JSON number formatting: integral values print without a
/// decimal point, everything else round-trips via %.17g.
std::string FormatMetricValue(double value);

/// Writes `contents` atomically (temp file + rename) so a concurrent scrape
/// never sees a torn snapshot.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace oocgemm::obs
