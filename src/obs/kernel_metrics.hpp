// Per-kernel-strategy instruments for the adaptive SpGEMM router.
//
// The kernel registry (src/kernels/kernel_registry.hpp) picks an
// accumulator strategy per row group; these metrics make that routing
// measurable:
//
//   oocgemm_kernel_rows_total{strategy}            rows executed per strategy
//   oocgemm_kernel_symbolic_seconds_total{strategy} wall seconds in symbolic
//   oocgemm_kernel_numeric_seconds_total{strategy}  wall seconds in numeric
//   oocgemm_kernel_misroutes_total{strategy}       rows whose post-hoc best
//                                                  strategy differed
//   oocgemm_kernel_misroute_cost_ratio             histogram of
//                                                  routed_cost / best_cost
//                                                  over mis-routed rows
//
// rows_total reconciles exactly with the router's group sizes (every routed
// row is recorded once, in the numeric pass) — the reconciliation property
// test_kernels_routing.cpp asserts.  The mis-route signal compares the
// modeled cost of the routed strategy against the post-hoc cheapest one
// once exact output nnz is known; a ratio near 1 means routing on the
// estimate lost almost nothing.
#pragma once

#include "obs/metrics.hpp"

namespace oocgemm::obs {

/// Resolved instruments for one strategy label.  References are stable for
/// the default registry's lifetime; call sites cache the struct.
struct KernelStrategyMetrics {
  Counter* rows_total = nullptr;
  DoubleCounter* symbolic_seconds = nullptr;
  DoubleCounter* numeric_seconds = nullptr;
  Counter* misroutes = nullptr;
};

/// Instruments labelled {strategy="<strategy>"} in the default registry.
KernelStrategyMetrics KernelMetricsFor(const char* strategy);

/// The routed-vs-best modeled cost ratio histogram (mis-routed rows only).
LogBucketHistogram& KernelMisrouteCostRatio();

}  // namespace oocgemm::obs
