#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oocgemm::obs {

namespace detail {

std::size_t ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::size_t>(kShards);
  return index;
}

}  // namespace detail

// --- LogBucketHistogram -----------------------------------------------------

LogBucketHistogram::LogBucketHistogram(const std::atomic<bool>* enabled,
                                       int buckets_per_pow2)
    : bp2_(buckets_per_pow2),
      counts_(static_cast<std::size_t>((kMaxExp - kMinExp) * buckets_per_pow2) +
              1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled) {
  OOC_CHECK(buckets_per_pow2 >= 1 && buckets_per_pow2 <= 64);
}

int LogBucketHistogram::BucketIndex(double value) const {
  if (!(value > 0.0)) return 0;  // <=0 and NaN share the zero bucket
  const double scaled = std::log2(value) * static_cast<double>(bp2_);
  const int lo = kMinExp * bp2_;
  const int hi = kMaxExp * bp2_ - 1;
  int i = static_cast<int>(std::floor(scaled));
  i = std::clamp(i, lo, hi);
  return i - lo + 1;
}

double LogBucketHistogram::UpperBound(int index) const {
  if (index <= 0) return 0.0;
  return std::exp2(static_cast<double>(index + kMinExp * bp2_) /
                   static_cast<double>(bp2_));
}

double LogBucketHistogram::LowerBound(int index) const {
  if (index <= 0) return 0.0;
  return std::exp2(static_cast<double>(index - 1 + kMinExp * bp2_) /
                   static_cast<double>(bp2_));
}

void LogBucketHistogram::Record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  counts_[static_cast<std::size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  double mn = min_.load(std::memory_order_relaxed);
  while (value < mn &&
         !min_.compare_exchange_weak(mn, value, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (value > mx &&
         !max_.compare_exchange_weak(mx, value, std::memory_order_relaxed)) {
  }
}

void LogBucketHistogram::MergeFrom(const LogBucketHistogram& other) {
  OOC_CHECK(bp2_ == other.bp2_ &&
            "merging histograms of different resolution");
  if (!enabled_->load(std::memory_order_relaxed)) return;
  std::int64_t merged = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t c = other.counts_[i].load(std::memory_order_acquire);
    if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    merged += c;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  const double osum = other.sum_.load(std::memory_order_acquire);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + osum,
                                     std::memory_order_relaxed)) {
  }
  const double omin = other.min_.load(std::memory_order_acquire);
  double mn = min_.load(std::memory_order_relaxed);
  while (omin < mn &&
         !min_.compare_exchange_weak(mn, omin, std::memory_order_relaxed)) {
  }
  const double omax = other.max_.load(std::memory_order_acquire);
  double mx = max_.load(std::memory_order_relaxed);
  while (omax > mx &&
         !max_.compare_exchange_weak(mx, omax, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LogBucketHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.growth = std::exp2(1.0 / static_cast<double>(bp2_));
  std::int64_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t c = counts_[i].load(std::memory_order_acquire);
    if (c == 0) continue;
    const int idx = static_cast<int>(i);
    s.buckets.push_back({LowerBound(idx), UpperBound(idx), c});
    total += c;
  }
  // The bucket tally is the authoritative count: count_ may lag the bucket
  // increments mid-record, and quantiles must be internally consistent.
  s.count = total;
  s.sum = sum_.load(std::memory_order_acquire);
  const double mn = min_.load(std::memory_order_acquire);
  const double mx = max_.load(std::memory_order_acquire);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = std::isfinite(mx) ? mx : 0.0;
  return s;
}

void LogBucketHistogram::ResetForTest() {
  for (auto& c : counts_) c.store(0, std::memory_order_release);
  count_.store(0, std::memory_order_release);
  sum_.store(0.0, std::memory_order_release);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_release);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_release);
}

std::pair<double, double> HistogramSnapshot::QuantileBounds(double q) const {
  if (count <= 0 || buckets.empty()) return {0.0, 0.0};
  // NaN would survive std::clamp and turn the rank cast into UB.
  if (std::isnan(q)) return {0.0, 0.0};
  q = std::clamp(q, 0.0, 1.0);
  // One sample: every quantile is that sample.  The bucket walk below
  // would mis-handle a single value <= 0 — the zero bucket's [0, 0] range
  // clamps against a negative min/max and reports 0, not the sample.
  if (count == 1) return {min, max};
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (const Bucket& b : buckets) {
    cumulative += b.count;
    if (cumulative >= rank) {
      const double lo = std::max(b.lower, min);
      const double hi = std::min(b.upper, max);
      // A clamp can invert the pair when every sample in the bucket sits
      // outside [min, max] refinement; keep the pair ordered.
      return {std::min(lo, hi), std::max(lo, hi)};
    }
  }
  return {max, max};
}

// --- MetricsRegistry --------------------------------------------------------

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

std::string LabelSignature(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string sig;
  for (const auto& [k, v] : sorted) {
    sig += k;
    sig += '=';
    sig += v;
    sig += '\x1f';  // unit separator: cannot collide with label text
  }
  return sig;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument& MetricsRegistry::ResolveLocked(
    const std::string& name, const Labels& labels, const std::string& help,
    MetricKind kind, bool floating) {
  Family& family = families_[name];
  if (family.by_labels.empty()) {
    family.kind = kind;
    family.floating = floating;
    family.help = help;
  } else {
    OOC_CHECK(family.kind == kind && family.floating == floating &&
              "metric re-registered with a different kind");
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  Instrument& inst = family.by_labels[LabelSignature(labels)];
  if (inst.labels.empty() && !labels.empty()) {
    inst.labels = labels;
    std::sort(inst.labels.begin(), inst.labels.end());
  }
  return inst;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  std::unique_lock<std::mutex> lock(mutex_);
  Instrument& inst =
      ResolveLocked(name, labels, help, MetricKind::kCounter, /*floating=*/false);
  if (!inst.counter) inst.counter = std::make_unique<Counter>(&enabled_);
  return *inst.counter;
}

DoubleCounter& MetricsRegistry::GetDoubleCounter(const std::string& name,
                                                 const Labels& labels,
                                                 const std::string& help) {
  std::unique_lock<std::mutex> lock(mutex_);
  Instrument& inst =
      ResolveLocked(name, labels, help, MetricKind::kCounter, /*floating=*/true);
  if (!inst.double_counter) {
    inst.double_counter = std::make_unique<DoubleCounter>(&enabled_);
  }
  return *inst.double_counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  std::unique_lock<std::mutex> lock(mutex_);
  Instrument& inst =
      ResolveLocked(name, labels, help, MetricKind::kGauge, /*floating=*/false);
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>(&enabled_);
  return *inst.gauge;
}

LogBucketHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                  const Labels& labels,
                                                  const std::string& help,
                                                  int buckets_per_pow2) {
  std::unique_lock<std::mutex> lock(mutex_);
  Instrument& inst = ResolveLocked(name, labels, help, MetricKind::kHistogram,
                                   /*floating=*/false);
  if (!inst.histogram) {
    inst.histogram =
        std::make_unique<LogBucketHistogram>(&enabled_, buckets_per_pow2);
  }
  OOC_CHECK(inst.histogram->buckets_per_pow2() == buckets_per_pow2 &&
            "histogram re-registered with a different resolution");
  return *inst.histogram;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::unique_lock<std::mutex> lock(mutex_);
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    MetricFamily out;
    out.name = name;
    out.help = family.help;
    out.kind = family.kind;
    for (const auto& [sig, inst] : family.by_labels) {
      MetricPoint p;
      p.labels = inst.labels;
      if (inst.counter) p.value = static_cast<double>(inst.counter->Value());
      if (inst.double_counter) p.value = inst.double_counter->Value();
      if (inst.gauge) p.value = static_cast<double>(inst.gauge->Value());
      if (inst.histogram) p.histogram = inst.histogram->Snapshot();
      out.points.push_back(std::move(p));
    }
    snap.families.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [sig, inst] : family.by_labels) {
      if (inst.counter) inst.counter->ResetForTest();
      if (inst.double_counter) inst.double_counter->ResetForTest();
      if (inst.gauge) inst.gauge->ResetForTest();
      if (inst.histogram) inst.histogram->ResetForTest();
    }
  }
}

double RegistrySnapshot::Value(const std::string& name,
                               const Labels& labels) const {
  const std::string sig = LabelSignature(labels);
  for (const MetricFamily& f : families) {
    if (f.name != name) continue;
    for (const MetricPoint& p : f.points) {
      if (LabelSignature(p.labels) == sig) return p.value;
    }
  }
  return 0.0;
}

const HistogramSnapshot* RegistrySnapshot::Histogram(
    const std::string& name, const Labels& labels) const {
  const std::string sig = LabelSignature(labels);
  for (const MetricFamily& f : families) {
    if (f.name != name || f.kind != MetricKind::kHistogram) continue;
    for (const MetricPoint& p : f.points) {
      if (LabelSignature(p.labels) == sig) return &p.histogram;
    }
  }
  return nullptr;
}

}  // namespace oocgemm::obs
