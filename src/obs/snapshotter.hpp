// Periodic exporter thread: scrapes a MetricsRegistry on an interval and
// writes the Prometheus and/or JSON serialization to files (atomically, so
// an external scraper tailing the path never reads a torn snapshot).
// SpgemmServer owns one when ServerConfig::metrics_path is set; the CLI
// exposes it as `serve --metrics-out=<path> --metrics-interval=<s>`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::obs {

class Snapshotter {
 public:
  struct Options {
    /// Seconds between periodic writes; <= 0 disables the thread (WriteNow
    /// and the final write on Stop still work).
    double interval_seconds = 1.0;
    /// Prometheus text target; empty skips the format.
    std::string prometheus_path;
    /// JSON target; empty skips the format.
    std::string json_path;
  };

  Snapshotter(MetricsRegistry& registry, Options options);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Serializes and writes one snapshot immediately (thread-safe).
  Status WriteNow();

  /// Stops the periodic thread and writes one final snapshot, so the files
  /// always end at the registry's terminal state.  Idempotent.
  void Stop();

  /// Completed write passes (periodic + explicit), for tests.
  std::int64_t writes() const { return writes_.load(std::memory_order_acquire); }

 private:
  void Loop();

  MetricsRegistry& registry_;
  Options options_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::atomic<std::int64_t> writes_{0};
};

}  // namespace oocgemm::obs
