#include "obs/snapshotter.hpp"

#include <chrono>

#include "obs/exporters.hpp"

namespace oocgemm::obs {

Snapshotter::Snapshotter(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.interval_seconds > 0.0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

Snapshotter::~Snapshotter() { Stop(); }

Status Snapshotter::WriteNow() {
  const RegistrySnapshot snap = registry_.Snapshot();
  if (!options_.prometheus_path.empty()) {
    Status st = WriteFileAtomic(options_.prometheus_path,
                                ToPrometheusText(snap));
    if (!st.ok()) return st;
  }
  if (!options_.json_path.empty()) {
    Status st = WriteFileAtomic(options_.json_path, ToJson(snap));
    if (!st.ok()) return st;
  }
  writes_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

void Snapshotter::Stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  WriteNow();  // terminal state always lands on disk
}

void Snapshotter::Loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    WriteNow();
    lock.lock();
  }
}

}  // namespace oocgemm::obs
